"""The asyncio front-end: concurrent clients over the sharded pool.

:class:`AsyncServingFrontend` bundles the tier — worker pool, micro-batcher,
shared metrics registry — behind one awaitable ``query()`` call, and
:func:`serve_async` puts a minimal newline-delimited-JSON TCP server in
front of it for out-of-process clients::

    {"id": 1, "sql": "SELECT COUNT(*) FROM R WHERE A = 0"}
    -> {"id": 1, "ok": true, "kind": "scalar", "value": 421.5}

Results are bit-identical to in-process ``execute_batch`` (same plans, same
workers, same kernels — the wire only moves them); the JSON surface is a
lossy *rendering* for external clients, not the identity-bearing format.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Any

from ...exceptions import (
    AdmissionRejectedError,
    CircuitOpenError,
    QueryCancelledError,
    ServingOverloadError,
    ThemisError,
)
from ...obs.metrics import MetricsRegistry
from ...query.ast import Query
from ...sql.engine import QueryResult, TableResult
from ..governance import (
    PRIORITY_INTERACTIVE,
    AdmissionController,
    CircuitBreakerConfig,
)
from .microbatch import MicroBatcher
from .pool import ShardedWorkerPool
from .supervisor import SupervisedWorkerPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...core import Themis
    from .faults import FaultInjector


class AsyncServingFrontend:
    """The whole scale tier behind one object: pool + micro-batcher.

    Parameters
    ----------
    themis:
        The fitted facade to serve (workers rebuild it deterministically).
    n_workers:
        Worker-process (shard) count.
    latency_budget, max_batch_size, max_queue, max_inflight, dispatch_timeout:
        Micro-batcher knobs (see :class:`MicroBatcher`).
    session_options:
        Forwarded to each worker's ``Themis.serve(...)``.
    supervised:
        When true (the default) the tier runs on a
        :class:`SupervisedWorkerPool`: crashed workers are respawned with
        replayed state, affected requests retry with backoff, and dead
        shards fail over on the hash ring.  ``False`` gives the bare
        :class:`ShardedWorkerPool` (a crash fails the batch).
    max_retries, request_deadline, heartbeat_interval, fallback, fault_injector:
        Supervision knobs (see :class:`SupervisedWorkerPool`); ignored when
        ``supervised=False``.  ``request_deadline`` is the default
        per-request deadline budget: it bounds micro-batch re-enqueues *and*
        propagates into worker dispatches as a cooperative cancellation
        deadline (``query(deadline=...)`` overrides it per request).
    admission:
        Optional :class:`~repro.serving.governance.AdmissionController`
        enabling priority-aware load shedding at submission time (see
        :class:`MicroBatcher`).
    circuit_breaker:
        Per-shard circuit breaking on the supervised pool (``True`` or a
        :class:`~repro.serving.governance.CircuitBreakerConfig`); ignored
        when ``supervised=False``.
    memory_budget_bytes:
        Per-worker cache memory budget in bytes, forwarded into every
        worker's session options so each shard runs a
        :class:`~repro.serving.governance.MemoryGovernor` over its caches.
    """

    def __init__(
        self,
        themis: "Themis",
        n_workers: int = 2,
        latency_budget: float = 0.002,
        max_batch_size: int = 64,
        max_queue: int = 1024,
        max_inflight: int = 4,
        dispatch_timeout: float | None = None,
        session_options: dict[str, Any] | None = None,
        start_method: str | None = None,
        supervised: bool = True,
        max_retries: int = 3,
        request_deadline: float | None = None,
        heartbeat_interval: float | None = None,
        fallback: str = "error",
        fault_injector: "FaultInjector | None" = None,
        admission: AdmissionController | None = None,
        circuit_breaker: "CircuitBreakerConfig | bool | None" = None,
        memory_budget_bytes: int | None = None,
    ):
        self.metrics = MetricsRegistry()
        session_options = dict(session_options or {})
        if memory_budget_bytes is not None:
            session_options.setdefault("memory_budget_bytes", memory_budget_bytes)
        if supervised:
            self.pool: ShardedWorkerPool = SupervisedWorkerPool(
                themis,
                n_workers=n_workers,
                timeout=dispatch_timeout,
                session_options=session_options,
                metrics=self.metrics,
                start_method=start_method,
                fault_injector=fault_injector,
                max_retries=max_retries,
                deadline=request_deadline,
                heartbeat_interval=heartbeat_interval,
                fallback=fallback,
                circuit_breaker=circuit_breaker,
            )
        else:
            self.pool = ShardedWorkerPool(
                themis,
                n_workers=n_workers,
                timeout=dispatch_timeout,
                session_options=session_options,
                metrics=self.metrics,
                start_method=start_method,
            )
        self.batcher = MicroBatcher(
            self.pool,
            latency_budget=latency_budget,
            max_batch_size=max_batch_size,
            max_queue=max_queue,
            max_inflight=max_inflight,
            dispatch_timeout=dispatch_timeout,
            max_retries=max_retries if supervised else 0,
            request_deadline=request_deadline,
            admission=admission,
            metrics=self.metrics,
        )
        self._started = False

    async def start(self) -> "AsyncServingFrontend":
        """Start the micro-batcher (the pool starts in the constructor)."""
        await self.batcher.start()
        self._started = True
        return self

    async def stop(self) -> None:
        """Drain the batcher, then shut the worker pool down."""
        if self._started:
            await self.batcher.stop()
            self._started = False
        self.pool.close()

    async def __aenter__(self) -> "AsyncServingFrontend":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    async def query(
        self,
        query: Query | str,
        priority: str = PRIORITY_INTERACTIVE,
        deadline: float | None = None,
    ) -> Any:
        """Serve one query through the micro-batched sharded path.

        ``priority`` is this request's admission class; ``deadline`` is its
        wall-clock budget in seconds (default: the front-end's
        ``request_deadline``), propagated to the worker as a cooperative
        cancellation deadline.
        """
        return await self.batcher.submit(
            query, priority=priority, deadline=deadline
        )

    def refit(self) -> int:
        """Coherently refit every shard (see :meth:`ShardedWorkerPool.refit`)."""
        return self.pool.refit()

    def statistics(self) -> dict[str, Any]:
        """One snapshot of the tier's registry (queue, shards, latency)."""
        return self.metrics.snapshot()


def encode_result(result: Any) -> dict[str, Any]:
    """Render one answer as a JSON-safe dict for the socket protocol."""
    if isinstance(result, QueryResult):
        return {
            "kind": "groups",
            "group_by": list(result.group_by),
            "groups": sorted(
                [list(group), value] for group, value in result
            ),
        }
    if isinstance(result, TableResult):
        return {
            "kind": "table",
            "columns": list(result.columns),
            "group_by": list(result.group_by),
            "rows": [list(row) for row in result.rows],
        }
    if isinstance(result, (int, float)):
        return {"kind": "scalar", "value": float(result)}
    raise ThemisError(f"cannot encode result of type {type(result).__name__}")


async def _handle_client(
    frontend: AsyncServingFrontend,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                request = json.loads(line)
                statement = request["sql"]
            except (json.JSONDecodeError, KeyError, TypeError) as error:
                response: dict[str, Any] = {"ok": False, "error": str(error)}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                continue
            request_id = request.get("id")
            priority = request.get("priority", PRIORITY_INTERACTIVE)
            deadline = request.get("deadline")
            try:
                result = await frontend.query(
                    statement, priority=priority, deadline=deadline
                )
                response = {"id": request_id, "ok": True, **encode_result(result)}
            except AdmissionRejectedError as error:
                response = {
                    "id": request_id,
                    "ok": False,
                    "error": str(error),
                    "rejected": True,
                    "priority": error.priority,
                    "retry_after": error.retry_after_hint,
                    "queue_depth": error.queue_depth,
                }
            except CircuitOpenError as error:
                response = {
                    "id": request_id,
                    "ok": False,
                    "error": str(error),
                    "overload": True,
                    "retry_after": error.retry_after_hint,
                    "shard_id": error.shard_id,
                }
            except ServingOverloadError as error:
                response = {
                    "id": request_id,
                    "ok": False,
                    "error": str(error),
                    "overload": True,
                    "queue_depth": error.queue_depth,
                    "shard_id": error.shard_id,
                }
            except QueryCancelledError as error:
                # DeadlineExceededError included: reason says which.
                response = {
                    "id": request_id,
                    "ok": False,
                    "error": str(error),
                    "cancelled": True,
                    "reason": error.reason,
                }
            except Exception as error:  # noqa: BLE001 - reported to the client
                response = {"id": request_id, "ok": False, "error": str(error)}
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - client vanished
            pass


async def serve_async(
    frontend: AsyncServingFrontend,
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.AbstractServer:
    """Open a newline-delimited-JSON TCP server over one started front-end.

    Each line is a request ``{"id": ..., "sql": "...", "priority":
    "interactive", "deadline": 0.5}`` (priority and deadline optional)
    answered by one response line.  Overload sheds come back as ``{"ok":
    false, "overload": true, ...}`` with the queue depth and lagging shard;
    admission rejections as ``{"ok": false, "rejected": true, "retry_after":
    ...}``; cancellations/deadline expiries as ``{"ok": false, "cancelled":
    true, "reason": ...}``.  Returns the ``asyncio`` server (use
    ``server.sockets[0].getsockname()`` for the bound port,
    ``server.close()`` to stop accepting).
    """
    return await asyncio.start_server(
        lambda r, w: _handle_client(frontend, r, w), host=host, port=port
    )
