"""Query serving: planner, result/plan/inference caches, batched execution.

This subsystem turns the one-shot :class:`~repro.core.themis.Themis` facade
into a reusable query service for high-throughput workloads:

* :mod:`repro.serving.planner` — canonical, hashable plan keys and evaluator
  routing (reweighted sample / Bayesian network / hybrid);
* :mod:`repro.serving.cache` — the LRU result and plan caches plus the shared
  BN inference cache (per-signature eliminated factors), all invalidated when
  the model is refitted;
* :mod:`repro.serving.executor` — batched execution that groups plans sharing
  GROUP BY columns/BN factors, dispatches BN-routed point plans through one
  batched variable-elimination call, amortizes generated-sample inference,
  and (by default) rewrites each batch with the batch-aware plan optimizer
  (:mod:`repro.plan.optimize`: dedup, predicate normalization into shared
  masks, multi-query group-by fusion — bit-identical to per-plan execution);
* :mod:`repro.serving.session` — the long-lived serving front-end returned by
  ``Themis.serve()``;
* :mod:`repro.serving.stats` — per-query outcomes, batch results, and
  session statistics;
* :mod:`repro.serving.scale` — the multi-process scale tier: an asyncio
  front-end (:class:`~repro.serving.scale.AsyncServingFrontend` /
  :func:`~repro.serving.scale.serve_async`) that micro-batches concurrent
  arrivals within a latency budget and dispatches them to a
  :class:`~repro.serving.scale.ShardedWorkerPool` — N worker processes, each
  owning one ``ServingSession`` and the slice of canonical plan keys a
  consistent-hash router assigns it, fed through the versioned plan wire
  format (:mod:`repro.plan.wire`) with coherent ``refit()`` broadcast;
* :mod:`repro.serving.governance` — end-to-end resource governance:
  deadline propagation and cooperative cancellation
  (:class:`~repro.serving.governance.Deadline` /
  :class:`~repro.serving.governance.CancelToken`), memory-budgeted caches
  with pressure-tiered eviction
  (:class:`~repro.serving.governance.MemoryGovernor`), priority-aware
  admission control
  (:class:`~repro.serving.governance.AdmissionController`), and per-shard
  circuit breaking (:class:`~repro.serving.governance.CircuitBreaker`).
"""

from .cache import CacheStatistics, InferenceCache, LRUCache, PlanCache, ResultCache
from .executor import BatchExecutor
from .governance import (
    PRIORITY_BACKGROUND,
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    AdmissionController,
    CancelToken,
    CircuitBreaker,
    CircuitBreakerConfig,
    Deadline,
    GovernedCache,
    MemoryGovernor,
    TokenBucket,
    measured_bytes,
)
from .planner import (
    ROUTE_BAYES_NET,
    ROUTE_HYBRID,
    ROUTE_SAMPLE,
    PlanKey,
    QueryPlan,
    QueryPlanner,
)
from .session import ServingSession
from .stats import BatchResult, QueryOutcome, ServingStatistics
from .scale import (
    AsyncServingFrontend,
    FaultInjector,
    MicroBatcher,
    ShardRouter,
    ShardedWorkerPool,
    SupervisedWorkerPool,
    WorkerSpec,
    serve_async,
)

__all__ = [
    "AdmissionController",
    "AsyncServingFrontend",
    "BatchExecutor",
    "CancelToken",
    "CircuitBreaker",
    "CircuitBreakerConfig",
    "Deadline",
    "FaultInjector",
    "GovernedCache",
    "MemoryGovernor",
    "PRIORITY_BACKGROUND",
    "PRIORITY_BATCH",
    "PRIORITY_INTERACTIVE",
    "TokenBucket",
    "measured_bytes",
    "MicroBatcher",
    "ShardRouter",
    "ShardedWorkerPool",
    "SupervisedWorkerPool",
    "WorkerSpec",
    "serve_async",
    "BatchResult",
    "CacheStatistics",
    "InferenceCache",
    "LRUCache",
    "PlanCache",
    "PlanKey",
    "QueryOutcome",
    "QueryPlan",
    "QueryPlanner",
    "ResultCache",
    "ROUTE_BAYES_NET",
    "ROUTE_HYBRID",
    "ROUTE_SAMPLE",
    "ServingSession",
    "ServingStatistics",
]
