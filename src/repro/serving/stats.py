"""Result containers and statistics for the serving subsystem.

Every served query produces a :class:`QueryOutcome` (the answer plus where it
came from and what it cost); a batch bundles them into a :class:`BatchResult`
with amortized timing; a session accumulates :class:`ServingStatistics`
across batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..query.ast import PointQuery
from ..sql.engine import QueryResult
from .planner import ROUTE_BAYES_NET, QueryPlan


@dataclass
class QueryOutcome:
    """One served query: its plan, answer, and serving diagnostics.

    Attributes
    ----------
    index:
        Position of the query in the submitted batch.
    plan:
        The plan the query executed under.
    result:
        The answer, identical to what ``Themis.query()`` returns.
    seconds:
        Wall-clock spent serving this query (0 for result-cache hits beyond
        the lookup itself).
    from_result_cache:
        Whether the answer came straight out of the result cache.
    deduplicated:
        Whether the answer was shared with an identical plan earlier in the
        same batch (executed once, fanned out).
    bn_batched:
        Whether the answer came out of the batch's single shared
        variable-elimination dispatch (BN-routed point plans only).
    optimized:
        Whether the answer came out of the batch's optimized columnar
        schedule (sample-routed plans and fused hybrid GROUP BY families).
    """

    index: int
    plan: QueryPlan
    result: float | QueryResult
    seconds: float = 0.0
    from_result_cache: bool = False
    deduplicated: bool = False
    bn_batched: bool = False
    optimized: bool = False

    @property
    def route(self) -> str:
        """The evaluator route the plan took."""
        return self.plan.route

    @property
    def is_bn_point(self) -> bool:
        """Whether this is a BN-routed point query (the batchable shape)."""
        return self.plan.route == ROUTE_BAYES_NET and isinstance(
            self.plan.query, PointQuery
        )


@dataclass
class BatchResult:
    """The outcome of one ``execute_batch()`` call, in submission order."""

    outcomes: list[QueryOutcome] = field(default_factory=list)
    total_seconds: float = 0.0
    #: Seconds spent materializing BN generated samples, paid once and shared
    #: by every plan in the batch that needed them.
    amortized_inference_seconds: float = 0.0
    #: Seconds spent in the batch's single BN point-inference dispatch (one
    #: variable-elimination pass per evidence signature, shared by every
    #: BN-routed point plan in the batch).
    bn_batch_seconds: float = 0.0
    #: Variable-elimination passes the batched dispatch actually ran (a
    #: warm per-signature factor cache makes this zero).
    bn_elimination_passes: int = 0
    #: Seconds spent in the batch's optimized columnar dispatch (the
    #: rewritten schedule serving sample-routed plans and fused hybrid
    #: GROUP BY families).
    columnar_batch_seconds: float = 0.0
    #: Rewrite counters of the batch's optimizer schedules (plans deduped,
    #: predicates pushed down, group-by fusions, masks shared); ``None``
    #: when the batch ran with ``optimize=False``.
    optimizer: dict[str, int] | None = None

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def results(self) -> list[float | QueryResult]:
        """The per-query answers, in the order the queries were submitted."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def cache_hits(self) -> int:
        """Queries in the batch served from the result cache."""
        return sum(1 for outcome in self.outcomes if outcome.from_result_cache)

    @property
    def bn_batched_points(self) -> int:
        """Queries answered by the shared batched BN inference dispatch."""
        return sum(1 for outcome in self.outcomes if outcome.bn_batched)

    @property
    def optimized_plans(self) -> int:
        """Queries answered by the batch's optimized columnar schedule."""
        return sum(1 for outcome in self.outcomes if outcome.optimized)

    @property
    def queries_per_second(self) -> float:
        """Batch throughput: queries served per second of batch wall-clock."""
        if self.total_seconds <= 0:
            return float("inf") if self.outcomes else 0.0
        return len(self.outcomes) / self.total_seconds

    def statistics(self) -> dict[str, Any]:
        """A printable summary of the batch."""
        routes: dict[str, int] = {}
        for outcome in self.outcomes:
            routes[outcome.route] = routes.get(outcome.route, 0) + 1
        return {
            "n_queries": len(self.outcomes),
            "total_seconds": self.total_seconds,
            "queries_per_second": self.queries_per_second,
            "result_cache_hits": self.cache_hits,
            "deduplicated": sum(1 for o in self.outcomes if o.deduplicated),
            "amortized_inference_seconds": self.amortized_inference_seconds,
            "bn_batched_points": self.bn_batched_points,
            "bn_batch_seconds": self.bn_batch_seconds,
            "bn_elimination_passes": self.bn_elimination_passes,
            "optimized_plans": self.optimized_plans,
            "columnar_batch_seconds": self.columnar_batch_seconds,
            "optimizer": dict(self.optimizer) if self.optimizer else {},
            "routes": routes,
        }


@dataclass
class ServingStatistics:
    """Session-lifetime counters, aggregated over every query and batch."""

    queries_served: int = 0
    batches_served: int = 0
    total_seconds: float = 0.0
    invalidations: int = 0
    route_counts: dict[str, int] = field(default_factory=dict)
    #: BN-routed point queries answered through the shared batched dispatch
    #: vs. individually (single-query serving, or cache-refill stragglers).
    bn_points_batched: int = 0
    bn_points_single: int = 0
    #: Queries answered through optimized columnar schedules.
    plans_optimized: int = 0
    #: Session-lifetime optimizer rewrite counters (see
    #: :class:`repro.plan.OptimizerStats`): how many plans the batch
    #: optimizer deduplicated, how many WHERE conjuncts predicate
    #: normalization eliminated, how many scatter-add passes group-by
    #: fusion avoided, and how many mask evaluations the shared mask stage
    #: skipped — the counters benchmarks assert on to prove the rewrites
    #: actually fired.
    plans_deduped: int = 0
    predicates_pushed_down: int = 0
    groupby_fusions: int = 0
    masks_shared: int = 0
    #: Join rewrites: side scatter-add passes avoided by join-side fusion,
    #: scheduled sides answered by the cross-batch join-side cache, and
    #: per-generated-sample evaluator dispatches hybrid family batching
    #: avoided.
    join_sides_fused: int = 0
    join_side_cache_hits: int = 0
    bn_sample_dispatches_saved: int = 0

    def record_outcome(self, outcome: QueryOutcome) -> None:
        """Fold one served query into the counters."""
        self.queries_served += 1
        self.total_seconds += outcome.seconds
        self.route_counts[outcome.route] = self.route_counts.get(outcome.route, 0) + 1
        if outcome.optimized:
            self.plans_optimized += 1
        if outcome.is_bn_point and not outcome.from_result_cache and not outcome.deduplicated:
            if outcome.bn_batched:
                self.bn_points_batched += 1
            else:
                self.bn_points_single += 1

    def record_batch(self, batch: BatchResult) -> None:
        """Fold one served batch into the counters."""
        self.batches_served += 1
        for outcome in batch.outcomes:
            self.record_outcome(outcome)
        if batch.optimizer:
            self.plans_deduped += batch.optimizer.get("plans_deduped", 0)
            self.predicates_pushed_down += batch.optimizer.get(
                "predicates_pushed_down", 0
            )
            self.groupby_fusions += batch.optimizer.get("groupby_fusions", 0)
            self.masks_shared += batch.optimizer.get("masks_shared", 0)
            self.join_sides_fused += batch.optimizer.get("join_sides_fused", 0)
            self.join_side_cache_hits += batch.optimizer.get(
                "join_side_cache_hits", 0
            )
            self.bn_sample_dispatches_saved += batch.optimizer.get(
                "bn_sample_dispatches_saved", 0
            )

    def as_dict(self) -> dict[str, Any]:
        """A plain-dict snapshot of every session-lifetime counter."""
        return {
            "queries_served": self.queries_served,
            "batches_served": self.batches_served,
            "total_seconds": self.total_seconds,
            "invalidations": self.invalidations,
            "route_counts": dict(self.route_counts),
            "bn_points_batched": self.bn_points_batched,
            "bn_points_single": self.bn_points_single,
            "plans_optimized": self.plans_optimized,
            "optimizer": {
                "plans_deduped": self.plans_deduped,
                "predicates_pushed_down": self.predicates_pushed_down,
                "groupby_fusions": self.groupby_fusions,
                "masks_shared": self.masks_shared,
                "join_sides_fused": self.join_sides_fused,
                "join_side_cache_hits": self.join_side_cache_hits,
                "bn_sample_dispatches_saved": self.bn_sample_dispatches_saved,
            },
        }
