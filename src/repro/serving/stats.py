"""Result containers and statistics for the serving subsystem.

Every served query produces a :class:`QueryOutcome` (the answer plus where it
came from and what it cost); a batch bundles them into a :class:`BatchResult`
with amortized timing; a session accumulates :class:`ServingStatistics`
across batches.

Since the observability layer landed, :class:`ServingStatistics` is a *view*
over one :class:`repro.obs.MetricsRegistry` — the same registry the batch
executor folds its optimizer counters into — so the session-lifetime numbers
and each batch's ``optimizer`` dict are, by construction, readings of the
same counters (the old independently-accumulated copies could drift).  Every
public field keeps its name, type, and bit-identical value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..obs import names
from ..obs.metrics import MetricsRegistry
from ..query.ast import PointQuery
from ..sql.engine import QueryResult, TableResult
from .planner import ROUTE_BAYES_NET, QueryPlan


@dataclass
class QueryOutcome:
    """One served query: its plan, answer, and serving diagnostics.

    Attributes
    ----------
    index:
        Position of the query in the submitted batch.
    plan:
        The plan the query executed under.
    result:
        The answer, identical to what ``Themis.query()`` returns.
    seconds:
        Wall-clock spent serving this query (0 for result-cache hits beyond
        the lookup itself).
    from_result_cache:
        Whether the answer came straight out of the result cache.
    deduplicated:
        Whether the answer was shared with an identical plan earlier in the
        same batch (executed once, fanned out).
    bn_batched:
        Whether the answer came out of the batch's single shared
        variable-elimination dispatch (BN-routed point plans only).
    optimized:
        Whether the answer came out of the batch's optimized columnar
        schedule (sample-routed plans and fused hybrid GROUP BY families).
    trace:
        The query's :class:`repro.obs.Span` tree when the serving session
        was tracing; ``None`` otherwise.
    error:
        The typed cancellation error when this query's token fired before
        an answer was produced (``result`` is then ``None``).  Only
        per-query cancellation sets this — batch-wide failures raise.
    cancelled:
        Whether this query was cancelled (``error`` holds the typed error).
    """

    index: int
    plan: QueryPlan
    result: float | QueryResult | TableResult | None
    seconds: float = 0.0
    from_result_cache: bool = False
    deduplicated: bool = False
    bn_batched: bool = False
    optimized: bool = False
    trace: Any = None
    error: BaseException | None = None
    cancelled: bool = False

    @property
    def route(self) -> str:
        """The evaluator route the plan took."""
        return self.plan.route

    @property
    def is_bn_point(self) -> bool:
        """Whether this is a BN-routed point query (the batchable shape)."""
        return self.plan.route == ROUTE_BAYES_NET and isinstance(
            self.plan.query, PointQuery
        )


@dataclass
class BatchResult:
    """The outcome of one ``execute_batch()`` call, in submission order."""

    outcomes: list[QueryOutcome] = field(default_factory=list)
    total_seconds: float = 0.0
    #: Seconds spent materializing BN generated samples, paid once and shared
    #: by every plan in the batch that needed them.
    amortized_inference_seconds: float = 0.0
    #: Seconds spent in the batch's single BN point-inference dispatch (one
    #: variable-elimination pass per evidence signature, shared by every
    #: BN-routed point plan in the batch).
    bn_batch_seconds: float = 0.0
    #: Variable-elimination passes the batched dispatch actually ran (a
    #: warm per-signature factor cache makes this zero).
    bn_elimination_passes: int = 0
    #: Seconds spent in the batch's optimized columnar dispatch (the
    #: rewritten schedule serving sample-routed plans and fused hybrid
    #: GROUP BY families).
    columnar_batch_seconds: float = 0.0
    #: Rewrite counters of the batch's optimizer schedules (plans deduped,
    #: predicates pushed down, group-by fusions, masks shared); ``None``
    #: when the batch ran with ``optimize=False``.  Derived as this batch's
    #: delta of the executor's ``optimizer.*`` registry counters, so it can
    #: never drift from :class:`ServingStatistics` over the same registry.
    optimizer: dict[str, int] | None = None
    #: The batch's :class:`repro.obs.Span` tree when traced; ``None`` otherwise.
    trace: Any = None

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def results(self) -> list[float | QueryResult | TableResult]:
        """The per-query answers, in the order the queries were submitted.

        Raises the first cancelled query's typed error — a caller that asked
        for plain answers must not silently receive ``None`` in a slot whose
        deadline expired.  Callers that want to handle per-query
        cancellation inspect :attr:`outcomes` directly.
        """
        for outcome in self.outcomes:
            if outcome.error is not None:
                raise outcome.error
        return [outcome.result for outcome in self.outcomes]

    @property
    def cache_hits(self) -> int:
        """Queries in the batch served from the result cache."""
        return sum(1 for outcome in self.outcomes if outcome.from_result_cache)

    @property
    def bn_batched_points(self) -> int:
        """Queries answered by the shared batched BN inference dispatch."""
        return sum(1 for outcome in self.outcomes if outcome.bn_batched)

    @property
    def optimized_plans(self) -> int:
        """Queries answered by the batch's optimized columnar schedule."""
        return sum(1 for outcome in self.outcomes if outcome.optimized)

    @property
    def queries_per_second(self) -> float:
        """Batch throughput: queries served per second of batch wall-clock."""
        if self.total_seconds <= 0:
            return float("inf") if self.outcomes else 0.0
        return len(self.outcomes) / self.total_seconds

    def statistics(self) -> dict[str, Any]:
        """A printable summary of the batch."""
        routes: dict[str, int] = {}
        for outcome in self.outcomes:
            routes[outcome.route] = routes.get(outcome.route, 0) + 1
        return {
            "n_queries": len(self.outcomes),
            "total_seconds": self.total_seconds,
            "queries_per_second": self.queries_per_second,
            "result_cache_hits": self.cache_hits,
            "deduplicated": sum(1 for o in self.outcomes if o.deduplicated),
            "amortized_inference_seconds": self.amortized_inference_seconds,
            "bn_batched_points": self.bn_batched_points,
            "bn_batch_seconds": self.bn_batch_seconds,
            "bn_elimination_passes": self.bn_elimination_passes,
            "optimized_plans": self.optimized_plans,
            "columnar_batch_seconds": self.columnar_batch_seconds,
            "optimizer": dict(self.optimizer) if self.optimizer else {},
            "routes": routes,
        }


class ServingStatistics:
    """Session-lifetime counters: a live view over one metrics registry.

    Every field the old accumulator exposed is preserved — same names, same
    (bit-identical) values — but each is now a read of a named counter in
    the shared :class:`~repro.obs.MetricsRegistry` (see
    :mod:`repro.obs.names`).  The batch executor folds its optimizer
    rewrite counters into the *same* registry and derives each
    ``BatchResult.optimizer`` dict as that batch's counter delta, which is
    what makes session-lifetime and per-batch optimizer numbers agree by
    construction instead of by parallel bookkeeping.

    ``record_outcome`` / ``record_batch`` write the serving-side counters
    (queries, routes, BN point dispatch) and feed the query/batch latency
    histograms.  Optimizer counters are *not* folded here — the executor
    that built the schedule already wrote them.
    """

    def __init__(self, metrics: MetricsRegistry | None = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # ------------------------------------------------------------------
    # Counter views (names frozen in repro.obs.names)
    # ------------------------------------------------------------------
    @property
    def queries_served(self) -> int:
        """Queries served over the session's lifetime."""
        return self.metrics.value(names.QUERIES_SERVED)

    @property
    def batches_served(self) -> int:
        """Batches served over the session's lifetime."""
        return self.metrics.value(names.BATCHES_SERVED)

    @property
    def total_seconds(self) -> float:
        """Wall-clock seconds attributed to served queries."""
        return self.metrics.value(names.TOTAL_SECONDS)

    @property
    def invalidations(self) -> int:
        """Executor rebuilds forced by model-generation changes."""
        return self.metrics.value(names.INVALIDATIONS)

    @property
    def route_counts(self) -> dict[str, int]:
        """Served queries per evaluator route, in first-served order."""
        return self.metrics.counters_with_prefix(names.ROUTE_PREFIX)

    #: BN-routed point queries answered through the shared batched dispatch
    #: vs. individually (single-query serving, or cache-refill stragglers).
    @property
    def bn_points_batched(self) -> int:
        return self.metrics.value(names.BN_POINTS_BATCHED)

    @property
    def bn_points_single(self) -> int:
        return self.metrics.value(names.BN_POINTS_SINGLE)

    @property
    def plans_optimized(self) -> int:
        """Queries answered through optimized columnar schedules."""
        return self.metrics.value(names.PLANS_OPTIMIZED)

    def _optimizer_counter(self, field_name: str) -> int:
        return self.metrics.value(names.optimizer_counter(field_name))

    #: Session-lifetime optimizer rewrite counters (see
    #: :class:`repro.plan.OptimizerStats`), read from the ``optimizer.*``
    #: registry counters the batch executor folds each schedule into —
    #: the counters benchmarks assert on to prove the rewrites fired.
    @property
    def plans_deduped(self) -> int:
        return self._optimizer_counter("plans_deduped")

    @property
    def predicates_pushed_down(self) -> int:
        return self._optimizer_counter("predicates_pushed_down")

    @property
    def groupby_fusions(self) -> int:
        return self._optimizer_counter("groupby_fusions")

    @property
    def masks_shared(self) -> int:
        return self._optimizer_counter("masks_shared")

    #: Join rewrites: side scatter-add passes avoided by join-side fusion,
    #: scheduled sides answered by the cross-batch join-side cache, and
    #: per-generated-sample evaluator dispatches hybrid family batching
    #: avoided.
    @property
    def join_sides_fused(self) -> int:
        return self._optimizer_counter("join_sides_fused")

    @property
    def join_side_cache_hits(self) -> int:
        return self._optimizer_counter("join_side_cache_hits")

    @property
    def bn_sample_dispatches_saved(self) -> int:
        return self._optimizer_counter("bn_sample_dispatches_saved")

    @property
    def window_sorts_shared(self) -> int:
        """Window ``argsort`` passes shared across a fused table family."""
        return self._optimizer_counter("window_sorts_shared")

    @property
    def dispatch_retries(self) -> int:
        """Requests re-dispatched after a retryable serving failure.

        Written by the scale tier (the supervised pool's retry loop and the
        micro-batcher's re-enqueue path share the counter); always 0 for
        in-process sessions, which have no crash/timeout retry path.
        """
        return self.metrics.value(names.SCALE_FAULT_RETRIES)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_invalidation(self) -> None:
        """Count one executor rebuild (model generation moved)."""
        self.metrics.counter(names.INVALIDATIONS).inc()

    def record_outcome(self, outcome: QueryOutcome) -> None:
        """Fold one served query into the counters."""
        self.metrics.counter(names.QUERIES_SERVED).inc()
        self.metrics.counter(names.TOTAL_SECONDS).inc(outcome.seconds)
        self.metrics.counter(names.route_counter(outcome.route)).inc()
        self.metrics.histogram(names.QUERY_SECONDS).record(outcome.seconds)
        if outcome.optimized:
            self.metrics.counter(names.PLANS_OPTIMIZED).inc()
        if outcome.is_bn_point and not outcome.from_result_cache and not outcome.deduplicated:
            if outcome.bn_batched:
                self.metrics.counter(names.BN_POINTS_BATCHED).inc()
            else:
                self.metrics.counter(names.BN_POINTS_SINGLE).inc()

    def record_batch(self, batch: BatchResult) -> None:
        """Fold one served batch into the counters.

        The batch's optimizer counters are deliberately *not* folded here:
        the executor that built the schedules already wrote them into the
        shared registry (``batch.optimizer`` is its per-batch delta), and
        folding the dict again would double-count.
        """
        self.metrics.counter(names.BATCHES_SERVED).inc()
        self.metrics.histogram(names.BATCH_SECONDS).record(batch.total_seconds)
        for outcome in batch.outcomes:
            self.record_outcome(outcome)

    def as_dict(self) -> dict[str, Any]:
        """A plain-dict snapshot of every session-lifetime counter."""
        return {
            "queries_served": self.queries_served,
            "batches_served": self.batches_served,
            "total_seconds": self.total_seconds,
            "invalidations": self.invalidations,
            "route_counts": dict(self.route_counts),
            "bn_points_batched": self.bn_points_batched,
            "bn_points_single": self.bn_points_single,
            "plans_optimized": self.plans_optimized,
            "dispatch_retries": self.dispatch_retries,
            "optimizer": {
                "plans_deduped": self.plans_deduped,
                "predicates_pushed_down": self.predicates_pushed_down,
                "groupby_fusions": self.groupby_fusions,
                "masks_shared": self.masks_shared,
                "join_sides_fused": self.join_sides_fused,
                "join_side_cache_hits": self.join_side_cache_hits,
                "bn_sample_dispatches_saved": self.bn_sample_dispatches_saved,
                "window_sorts_shared": self.window_sorts_shared,
            },
        }
