"""Serving sessions: a long-lived query interface over one Themis instance.

A :class:`ServingSession` owns the planner, the two cache tiers, and the
batch executor for one :class:`~repro.core.themis.Themis` facade.  It tracks
the facade's model generation: any ingestion call or ``refit()`` bumps the
generation, and the session transparently rebuilds its executor and drops
every cache tier before serving the next query — a stale cache can never leak
answers from a previous model.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from ..obs import names
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, Tracer
from ..query.ast import Query
from ..sql.engine import QueryResult
from .cache import InferenceCache, PlanCache, ResultCache
from .executor import BatchExecutor
from .governance import (
    CancelToken,
    Deadline,
    GovernedCache,
    MemoryGovernor,
    resolve_cancel_token,
)
from .planner import QueryPlanner
from .stats import BatchResult, QueryOutcome, ServingStatistics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.themis import Themis

#: Keys in cache-tier statistics that report *current sizes* rather than
#: monotone counters; window views keep them as-is instead of differencing.
_GAUGE_KEYS = frozenset(
    {
        "entries",
        "cached_masks",
        "cached_sides",
        "cached_factors",
        "factors",
        "marginals",
        "samples_warm",
        "capacity",
        "factor_capacity",
        "generation",
    }
)


def _window_view(current: dict[str, Any], baseline: dict[str, Any]) -> dict[str, Any]:
    """Per-window cache statistics: counters differenced, sizes kept current."""
    view: dict[str, Any] = {}
    for key, value in current.items():
        if isinstance(value, dict):
            view[key] = _window_view(value, baseline.get(key, {}) if isinstance(baseline.get(key), dict) else {})
        elif key in _GAUGE_KEYS or isinstance(value, bool) or not isinstance(value, (int, float)):
            view[key] = value
        elif key == "hit_rate":
            view[key] = value  # recomputed below from the windowed hits/misses
        else:
            base = baseline.get(key, 0)
            view[key] = value - (base if isinstance(base, (int, float)) else 0)
    if "hit_rate" in view:
        hits = view.get("hits", 0)
        misses = view.get("misses", 0)
        total = hits + misses
        view["hit_rate"] = (hits / total) if total else 0.0
    return view


class ServingSession:
    """A caching, batching query-serving front-end for one Themis instance.

    Parameters
    ----------
    themis:
        The facade to serve from (fitted lazily on first query).
    result_cache_size:
        Capacity of the LRU result cache (plan-key -> answer).
    plan_cache_size:
        Capacity of the LRU SQL-text -> plan cache.
    inference_factor_capacity:
        Capacity of the per-signature eliminated-factor cache backing
        batched BN point inference (one factor per queried evidence-variable
        set, so a modest capacity covers most workloads).  The factor cache
        lives on the fitted model's inference engine and is shared by every
        session over that model; the most recent session's capacity wins.
    exact_bn_aggregates:
        Opt-in: lower network-routed scalar aggregate plans to batched
        exact conditional inference over shared eliminated factors instead
        of the default forward-sampled answering.  Deterministic and
        batch-friendly, but deliberately *not* bit-identical to the sampled
        path (so the default stays the paper's semantics).
    optimize:
        Whether batches run through the batch-aware plan optimizer
        (shared-sub-plan dedup, predicate normalization and pushdown into
        shared masks, multi-query group-by fusion).  On by default —
        optimized answers are bit-identical to per-plan execution;
        ``Themis.serve(optimize=False)`` is the per-plan escape hatch for
        debugging and for measuring the optimizer's effect.
    trace:
        When true, every served query and batch carries a structured span
        tree (``outcome.trace`` / ``batch.trace``) recording where its
        latency went — compile, route, BN dispatch, optimized kernel units,
        cache probes — rendered by ``trace.render()`` and exportable as
        JSONL.  A fresh :class:`~repro.obs.Tracer` is built per call, so a
        long-lived tracing session never accumulates old trees.  Off by
        default: the untraced path runs against a shared no-op recorder
        whose overhead the ``obs`` benchmark bounds below 3%.
    memory_budget_bytes:
        When set, every cache tier (result, mask, join-side, inference
        factors) registers with a per-session
        :class:`~repro.serving.governance.MemoryGovernor` enforcing this
        global byte budget with pressure-tiered eviction (soft → evict
        cold entries by hit density, hard → reject admissions, critical →
        flush), sampled after every serve.  ``None`` (the default) leaves
        caches bounded only by their per-tier entry capacities.
    default_deadline:
        When set, every query/batch served without an explicit ``deadline``
        gets this many seconds; an expired deadline raises a typed
        :class:`~repro.exceptions.DeadlineExceededError` at the next
        chunk-boundary poll.
    """

    def __init__(
        self,
        themis: "Themis",
        result_cache_size: int = 256,
        plan_cache_size: int = 512,
        inference_factor_capacity: int = 128,
        exact_bn_aggregates: bool = False,
        optimize: bool = True,
        trace: bool = False,
        memory_budget_bytes: int | None = None,
        default_deadline: float | None = None,
    ):
        self._themis = themis
        self._result_cache = ResultCache(result_cache_size)
        self._plan_cache = PlanCache(plan_cache_size)
        self._inference_factor_capacity = int(inference_factor_capacity)
        self._exact_bn_aggregates = bool(exact_bn_aggregates)
        self._optimize = bool(optimize)
        self._trace = bool(trace)
        self._default_deadline = default_deadline
        self._inference_cache: InferenceCache | None = None
        self._executor: BatchExecutor | None = None
        self._generation: int | None = None
        self._cache_window: dict[str, Any] | None = None
        #: One registry per session: the executor folds optimizer/BN/stage
        #: counters into it, and ``statistics`` reads them back as views.
        self.metrics = MetricsRegistry()
        self.statistics = ServingStatistics(self.metrics)
        self.governor: MemoryGovernor | None = None
        if memory_budget_bytes is not None:
            self.governor = MemoryGovernor(memory_budget_bytes, metrics=self.metrics)
            self._result_cache.governor = self.governor

    # ------------------------------------------------------------------
    # Model-generation tracking
    # ------------------------------------------------------------------
    @property
    def themis(self) -> "Themis":
        """The facade this session serves."""
        return self._themis

    @property
    def generation(self) -> int | None:
        """The model generation the caches were built against."""
        return self._generation

    def _ensure_current(self) -> BatchExecutor:
        """(Re)build the executor and invalidate caches on model changes."""
        generation = self._themis.generation
        if self._executor is not None and generation == self._generation:
            return self._executor
        model = self._themis.model
        # Fitting inside .model bumps the generation; re-read it afterwards.
        generation = self._themis.generation
        if self._executor is not None:
            self.statistics.record_invalidation()
        self._result_cache.invalidate(generation)
        self._plan_cache.invalidate()
        if self._inference_cache is None:
            self._inference_cache = InferenceCache(
                model.bayes_net_evaluator,
                generation=generation,
                factor_capacity=self._inference_factor_capacity,
            )
        else:
            self._inference_cache.invalidate(model.bayes_net_evaluator, generation)
        # Share the fitted engine's compiler so each query compiles once
        # system-wide (planner keys/routes and engine execution read the
        # same memoized plan).
        planner = QueryPlanner(
            model.sample.schema,
            model,
            compiler=model.sample_evaluator.engine.executor.compiler,
        )
        self._executor = BatchExecutor(
            model,
            planner,
            self._result_cache,
            self._inference_cache,
            self._plan_cache,
            exact_bn_aggregates=self._exact_bn_aggregates,
            optimize=self._optimize,
            metrics=self.metrics,
        )
        self._generation = generation
        self._register_governed_caches(model)
        return self._executor

    def _register_governed_caches(self, model) -> None:
        """(Re)bind every cache tier to the session's memory governor.

        Called from :meth:`_ensure_current` on every executor rebuild — a
        refit swaps the columnar engine (hence mask/join-side caches), so
        the adapters must re-point at the live objects each generation.
        """
        if self.governor is None:
            return
        engine = model.sample_evaluator.engine
        mask_cache = engine.mask_cache
        join_cache = engine.executor.join_side_cache
        inference = self._inference_cache
        self._result_cache.governor = self.governor
        mask_cache.governor = self.governor
        join_cache.governor = self.governor
        self.governor.register(
            GovernedCache(
                "result",
                lambda: self._result_cache.byte_size,
                lambda: len(self._result_cache),
                lambda: self._result_cache.statistics.hits,
                self._result_cache.evict_entries,
            )
        )
        self.governor.register(
            GovernedCache(
                "mask",
                lambda: mask_cache.byte_size,
                lambda: len(mask_cache),
                lambda: mask_cache.hits,
                mask_cache.evict_entries,
            )
        )
        self.governor.register(
            GovernedCache(
                "join_side",
                lambda: join_cache.byte_size,
                lambda: len(join_cache),
                lambda: join_cache.hits,
                join_cache.evict_entries,
            )
        )
        if inference is not None:
            self.governor.register(
                GovernedCache(
                    "inference",
                    lambda: inference.byte_size,
                    lambda: inference.engine.cached_factor_count,
                    lambda: inference.statistics.hits,
                    inference.evict_entries,
                )
            )

    def _resolve_token(
        self,
        cancel: CancelToken | None,
        deadline: "Deadline | float | None",
    ) -> CancelToken | None:
        if deadline is None:
            deadline = self._default_deadline
        return resolve_cancel_token(cancel, deadline)

    def _maintain(self) -> None:
        if self.governor is not None:
            self.governor.maintain()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def execute(
        self,
        query: Query | str,
        cancel: CancelToken | None = None,
        deadline: "Deadline | float | None" = None,
    ) -> float | QueryResult:
        """Serve one query (SQL text or AST); answers match ``Themis.query()``."""
        return self.execute_with_outcome(query, cancel=cancel, deadline=deadline).result

    def execute_with_outcome(
        self,
        query: Query | str,
        cancel: CancelToken | None = None,
        deadline: "Deadline | float | None" = None,
    ) -> QueryOutcome:
        """Serve one query and return the full :class:`QueryOutcome`.

        A tracing session (``trace=True``) attaches the query's span tree
        — ``query`` → ``compile`` + ``execute`` — as ``outcome.trace``.
        ``cancel``/``deadline`` govern the query cooperatively; on the
        single-query path the token is polled at the compile/execute
        boundaries (batches poll deeper, per execution chunk).
        """
        token = self._resolve_token(cancel, deadline)
        executor = self._ensure_current()
        tracer = Tracer() if self._trace else NULL_TRACER
        start = time.perf_counter()
        try:
            with tracer.span("query") as root:
                if token is not None:
                    token.poll()
                with tracer.span("compile"):
                    plan = executor.plan(query)
                if tracer.enabled:
                    root.set(route=plan.route, shape=plan.shape)
                if token is not None:
                    token.poll()
                with tracer.span("execute", route=plan.route) as span:
                    result, from_cache = executor.execute_plan(plan, tracer=tracer)
                    if tracer.enabled:
                        span.set(from_result_cache=from_cache)
        finally:
            self._maintain()
        outcome = QueryOutcome(
            index=0,
            plan=plan,
            result=result,
            seconds=time.perf_counter() - start,
            from_result_cache=from_cache,
            trace=root if self._trace else None,
        )
        self.statistics.record_outcome(outcome)
        return outcome

    def execute_batch(
        self,
        queries: Sequence[Query | str],
        cancel=None,
        deadline: "Deadline | float | None" = None,
    ) -> BatchResult:
        """Serve a batch of SQL strings and/or ASTs in submission order.

        A tracing session (``trace=True``) attaches the batch's span tree
        (compile → route → warm-samples → bn-dispatch → columnar units →
        cache-probe) as ``batch.trace``.  ``cancel`` may be one
        :class:`~repro.serving.governance.CancelToken` for the whole batch
        (polled per execution chunk; an expired deadline raises) or a
        per-query token sequence (fired tokens get error outcomes, their
        fused siblings execute normally).
        """
        if not isinstance(cancel, (list, tuple)):
            cancel = self._resolve_token(cancel, deadline)
        executor = self._ensure_current()
        tracer = Tracer() if self._trace else NULL_TRACER
        try:
            batch = executor.execute_batch(queries, tracer=tracer, cancel=cancel)
        finally:
            self._maintain()
        self.statistics.record_batch(batch)
        return batch

    # ------------------------------------------------------------------
    # Introspection and maintenance
    # ------------------------------------------------------------------
    @property
    def result_cache(self) -> ResultCache:
        """The tier-one result cache."""
        return self._result_cache

    @property
    def plan_cache(self) -> PlanCache:
        """The LRU cache mapping raw SQL text to its planned form."""
        return self._plan_cache

    @property
    def inference_cache(self) -> InferenceCache | None:
        """The tier-two shared inference cache (``None`` before first use)."""
        return self._inference_cache

    def clear_caches(self) -> None:
        """Drop every cache tier without touching the fitted model."""
        self._result_cache.invalidate()
        self._plan_cache.invalidate()
        if self._inference_cache is not None and self._executor is not None:
            self._inference_cache.invalidate(
                self._executor.model.bayes_net_evaluator,
                self._generation or 0,
            )

    def cache_statistics(self, window: bool = False) -> dict[str, Any]:
        """Hit/miss snapshots of every cache tier, plus size-in-items counts.

        Sizes come from the stat-free ``entries()`` probes, so reading the
        statistics never promotes an entry or perturbs a hit rate.  The
        lifetime numbers are also mirrored into the session registry's
        ``cache.<tier>.*`` gauges each time this is called.

        With ``window=True`` the counters (hits/misses/evictions and the
        BN engine's amortization counters) are reported as deltas since the
        last :meth:`reset_cache_window` call — and ``hit_rate`` is the
        *window's* hit rate — while sizes (``entries``, ``cached_*``,
        ``samples_warm``) stay current values.  Lifetime counters are never
        disturbed: windows are pure snapshot arithmetic.
        """
        stats = {
            "result_cache": {
                **self._result_cache.statistics.as_dict(),
                "entries": len(self._result_cache),
            },
            "plan_cache": {
                **self._plan_cache.statistics.as_dict(),
                "entries": len(self._plan_cache),
            },
        }
        if self._inference_cache is not None:
            stats["inference_cache"] = {
                **self._inference_cache.describe(),
                "entries": self._inference_cache.entries(),
            }
        if self._executor is not None:
            engine = self._executor.model.sample_evaluator.engine
            stats["mask_cache"] = engine.mask_cache.statistics()
            # statistics() already reports the side count as `cached_sides`.
            stats["join_side_cache"] = engine.executor.join_side_cache.statistics()
        self._sync_cache_gauges(stats)
        if window:
            return _window_view(stats, self._cache_window or {})
        return stats

    def reset_cache_window(self) -> None:
        """Start a new reporting window for ``cache_statistics(window=True)``.

        Takes a snapshot of every tier's lifetime counters; subsequent
        window reads subtract it.  Nothing is mutated — ``entries()`` /
        ``peek()`` probes and the lifetime statistics are untouched.
        """
        self._cache_window = self.cache_statistics()

    def _sync_cache_gauges(self, stats: dict[str, Any]) -> None:
        """Mirror the cache tiers' lifetime numbers into registry gauges."""
        tiers = {
            "result_cache": "result",
            "plan_cache": "plan",
            "inference_cache": "inference",
            "mask_cache": "mask",
            "join_side_cache": "join_side",
        }
        for key, tier in tiers.items():
            tier_stats = stats.get(key)
            if not tier_stats:
                continue
            for metric, value in tier_stats.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                self.metrics.gauge(names.cache_gauge(tier, metric)).set(value)

    def describe(self) -> dict[str, Any]:
        """Session statistics plus cache statistics, one printable dict."""
        return {**self.statistics.as_dict(), "caches": self.cache_statistics()}
