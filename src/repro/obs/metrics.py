"""A process-local metrics registry: counters, gauges, latency histograms.

One :class:`MetricsRegistry` per serving session is the single accumulation
point for every counter the system emits — the optimizer rewrite counters,
the BN engine counters, and the serving-layer route/cache counters all land
here, and :class:`repro.serving.ServingStatistics` reads them back as views.
Keeping one writer per counter family is what eliminates the old drift risk
between ``ServingStatistics`` and ``BatchResult``: both now quote the same
registry cell.

Histograms are log-bucketed (:data:`repro.obs.names.LATENCY_BUCKETS`) and
report p50/p95/p99 as the upper bound of the bucket containing the quantile —
a classic fixed-memory estimator whose error is bounded by the bucket ratio.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any

from .names import LATENCY_BUCKETS


class Counter:
    """A monotonically increasing named value (ints stay ints)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (negative increments are rejected)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value!r})"


class Gauge:
    """A named value that can move in either direction (cache sizes etc.)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        """Replace the current value."""
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value!r})"


class Histogram:
    """A fixed-memory log-bucketed distribution of observed values.

    ``buckets`` holds the upper bound of each bucket; values above the last
    bound land in an overflow bucket.  Quantiles are estimated as the upper
    bound of the bucket containing the requested rank.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "max_value")

    def __init__(self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS):
        self.name = name
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    def record(self, value: float) -> None:
        """Fold one observation into the distribution."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    def percentile(self, quantile: float) -> float:
        """Upper bound of the bucket holding the ``quantile`` rank (0..1)."""
        if self.count == 0:
            return 0.0
        rank = quantile * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.max_value
        return self.max_value

    @property
    def mean(self) -> float:
        """Arithmetic mean of every recorded value."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """Count, sum, mean, max, and the p50/p95/p99 estimates."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "max": self.max_value,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Named counters, gauges, and histograms, created on first touch."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument accessors (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created if missing)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created if missing)."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS
    ) -> Histogram:
        """The histogram registered under ``name`` (created if missing)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, buckets)
        return histogram

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def value(self, name: str, default: int | float = 0) -> int | float:
        """Current value of a counter or gauge, without creating it."""
        counter = self._counters.get(name)
        if counter is not None:
            return counter.value
        gauge = self._gauges.get(name)
        if gauge is not None:
            return gauge.value
        return default

    def counters_with_prefix(self, prefix: str) -> dict[str, int | float]:
        """``{suffix: value}`` for every counter named ``prefix + suffix``."""
        return {
            name[len(prefix) :]: counter.value
            for name, counter in self._counters.items()
            if name.startswith(prefix)
        }

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict copy: counters, gauges, and histogram summaries."""
        return {
            "counters": {name: c.value for name, c in self._counters.items()},
            "gauges": {name: g.value for name, g in self._gauges.items()},
            "histograms": {
                name: h.summary() for name, h in self._histograms.items()
            },
        }

    def as_dict(self) -> dict[str, Any]:
        """Alias of :meth:`snapshot` for symmetry with the other surfaces."""
        return self.snapshot()

    def reset(self) -> None:
        """Zero every instrument (names stay registered)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0
        for histogram in self._histograms.values():
            histogram.counts = [0] * (len(histogram.buckets) + 1)
            histogram.count = 0
            histogram.total = 0.0
            histogram.max_value = 0.0

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )
