"""Structured tracing: span trees with wall-time, attributes, and counters.

A :class:`Tracer` hands out :class:`Span` context managers; nesting follows
the runtime call structure, so one served batch produces one tree — compile,
route, warm-samples, BN dispatch, optimize, columnar kernel units, cache
probe — each node carrying its wall-clock seconds plus whatever counters the
stage chose to attach (mask-cache hits, plans deduped, elimination passes).

The disabled path is :data:`NULL_TRACER`: a singleton whose ``span()``
returns a stateless no-op span, so instrumented code pays one attribute
lookup and one trivial call per potential span and nothing else.  Hot loops
additionally guard on ``tracer.enabled`` and skip even that.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Iterator, TextIO


class Span:
    """One timed node in a trace tree."""

    __slots__ = ("name", "attributes", "counters", "children", "_tracer", "_start", "_end")

    #: Real spans record; the null span advertises ``False`` so hot loops can
    #: skip instrumentation entirely.
    enabled = True

    def __init__(self, name: str, tracer: "Tracer", attributes: dict[str, Any]):
        self.name = name
        self.attributes = attributes
        self.counters: dict[str, int | float] = {}
        self.children: list[Span] = []
        self._tracer = tracer
        self._start = 0.0
        self._end: float | None = None

    # ------------------------------------------------------------------
    # Context-manager lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._open(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._end = time.perf_counter()
        self._tracer._close(self)

    @property
    def seconds(self) -> float:
        """Wall-clock seconds (still ticking if the span is open)."""
        end = self._end if self._end is not None else time.perf_counter()
        return end - self._start

    # ------------------------------------------------------------------
    # Annotation
    # ------------------------------------------------------------------
    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes on this span."""
        self.attributes.update(attributes)
        return self

    def count(self, **counters: int | float) -> "Span":
        """Add to this span's named counters."""
        for name, value in counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        return self

    def child(self, name: str, **attributes: Any) -> "Span":
        """Attach a completed zero-duration structural child.

        Used for facts with tree shape but no independent wall time — plan
        slots in a fused unit, deduplicated fan-out targets.
        """
        span = Span(name, self._tracer, attributes)
        span._end = span._start
        self.children.append(span)
        return span

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name, pre-order."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def spans(self, name: str) -> list["Span"]:
        """Every descendant (or self) with the given name, pre-order."""
        return [span for span in self.walk() if span.name == name]

    def counter_total(self, name: str) -> int | float:
        """Sum of one counter over this span and every descendant."""
        return sum(span.counters.get(name, 0) for span in self.walk())

    def as_dict(self) -> dict[str, Any]:
        """A JSON-friendly nested dict of the subtree."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "attributes": dict(self.attributes),
            "counters": dict(self.counters),
            "children": [child.as_dict() for child in self.children],
        }

    def render(self) -> str:
        """The human-readable EXPLAIN ANALYZE tree for this subtree."""
        return "\n".join(_render_lines(self, "", ""))

    def __repr__(self) -> str:
        return f"Span({self.name!r}, seconds={self.seconds:.6f}, children={len(self.children)})"


class Tracer:
    """Produces spans and keeps the forest of completed root spans."""

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span; nest it with ``with tracer.span(...) as span:``."""
        return Span(name, self, attributes)

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def _open(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        # Tolerate out-of-order exits rather than corrupting the stack.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            while self._stack and self._stack.pop() is not span:
                pass

    def render(self) -> str:
        """Every completed root tree, rendered."""
        return "\n".join(root.render() for root in self.roots)

    def export_jsonl(self, destination: str | os.PathLike | TextIO) -> int:
        """Write one JSON object per span (flat, parent-linked) to a path or
        file object; returns the number of spans written."""
        if isinstance(destination, (str, os.PathLike)):
            with open(destination, "w", encoding="utf-8") as handle:
                return self.export_jsonl(handle)
        written = 0
        identifiers: dict[int, int] = {}
        for root in self.roots:
            for span in root.walk():
                identifiers[id(span)] = len(identifiers)
        for root in self.roots:
            stack: list[tuple[Span, int | None]] = [(root, None)]
            while stack:
                span, parent = stack.pop()
                record = {
                    "id": identifiers[id(span)],
                    "parent": parent,
                    "name": span.name,
                    "seconds": span.seconds,
                    "attributes": _jsonable(span.attributes),
                    "counters": dict(span.counters),
                }
                destination.write(json.dumps(record) + "\n")
                written += 1
                for child in reversed(span.children):
                    stack.append((child, identifiers[id(span)]))
        return written

    def __repr__(self) -> str:
        return f"Tracer(roots={len(self.roots)}, open={len(self._stack)})"


# ---------------------------------------------------------------------------
# The disabled path: stateless no-op singletons
# ---------------------------------------------------------------------------
class _NullSpan:
    """A span that records nothing; every method is a cheap no-op."""

    __slots__ = ()
    enabled = False
    name = ""
    seconds = 0.0
    attributes: dict[str, Any] = {}
    counters: dict[str, int | float] = {}
    children: list = []

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def count(self, **counters: int | float) -> "_NullSpan":
        return self

    def child(self, name: str, **attributes: Any) -> "_NullSpan":
        return self

    def walk(self):
        return iter(())

    def find(self, name: str):
        return None

    def spans(self, name: str) -> list:
        return []

    def counter_total(self, name: str) -> int:
        return 0

    def as_dict(self) -> dict[str, Any]:
        return {}

    def render(self) -> str:
        return ""

    def __repr__(self) -> str:
        return "NULL_SPAN"


class NullTracer:
    """The disabled tracer: hands out :data:`NULL_SPAN` and keeps nothing."""

    __slots__ = ()
    enabled = False
    roots: list = []

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return NULL_SPAN

    def current(self) -> None:
        return None

    def render(self) -> str:
        return ""

    def export_jsonl(self, destination: str | TextIO) -> int:
        return 0

    def __repr__(self) -> str:
        return "NULL_TRACER"


#: Shared no-op span — the default value instrumented code works with.
NULL_SPAN = _NullSpan()
#: Shared no-op tracer — the default ``tracer=`` argument everywhere.
NULL_TRACER = NullTracer()


# ---------------------------------------------------------------------------
# Rendering helpers
# ---------------------------------------------------------------------------
def format_seconds(seconds: float) -> str:
    """A compact human duration: ``812ns`` / ``3.1us`` / ``4.2ms`` / ``1.3s``."""
    if seconds < 1e-6:
        return f"{seconds * 1e9:.0f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds:.3f}s"


def _render_lines(span: Span, prefix: str, child_prefix: str) -> list[str]:
    parts = [f"{prefix}{span.name}  {format_seconds(span.seconds)}"]
    if span.attributes:
        parts.append(
            " ".join(f"{key}={value}" for key, value in span.attributes.items())
        )
    if span.counters:
        parts.append(
            "[" + " ".join(f"{key}={value}" for key, value in span.counters.items()) + "]"
        )
    lines = ["  ".join(parts)]
    for index, child in enumerate(span.children):
        last = index == len(span.children) - 1
        branch = "└─ " if last else "├─ "
        extend = "   " if last else "│  "
        lines.extend(
            _render_lines(child, child_prefix + branch, child_prefix + extend)
        )
    return lines


def _jsonable(attributes: dict[str, Any]) -> dict[str, Any]:
    return {
        key: value if isinstance(value, (str, int, float, bool, type(None))) else str(value)
        for key, value in attributes.items()
    }
