"""Frozen names of the observability surface.

Metric names and histogram bucket boundaries are public API: dashboards,
benchmark assertions, and the serving-statistics views all address the
registry by these strings.  They live in one module so that a rename is a
deliberate, reviewed change — ``tests/test_obs.py`` pins every value here
and fails on accidental drift.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Histogram bucket boundaries
# ---------------------------------------------------------------------------
#: Log-spaced latency bucket upper bounds, in seconds: 1 µs doubling up to
#: ~1073 s.  Fine enough for sub-millisecond kernel stages, wide enough for
#: whole-experiment wall clocks.  31 bounds -> 32 buckets (last is overflow).
LATENCY_BUCKETS: tuple[float, ...] = tuple(1e-6 * (2**i) for i in range(31))

# ---------------------------------------------------------------------------
# Serving-session counters (the ServingStatistics view reads these)
# ---------------------------------------------------------------------------
QUERIES_SERVED = "serving.queries_served"
BATCHES_SERVED = "serving.batches_served"
TOTAL_SECONDS = "serving.total_seconds"
INVALIDATIONS = "serving.invalidations"
#: Per-route served-query counters are ``serving.route.<route-name>``.
ROUTE_PREFIX = "serving.route."
BN_POINTS_BATCHED = "serving.bn_points_batched"
BN_POINTS_SINGLE = "serving.bn_points_single"
PLANS_OPTIMIZED = "serving.plans_optimized"

# ---------------------------------------------------------------------------
# Batch-optimizer counters (mirrors of OptimizerStats fields)
# ---------------------------------------------------------------------------
#: Optimizer rewrite counters are ``optimizer.<field>`` for each field of
#: :class:`repro.plan.OptimizerStats`, in its ``as_dict()`` order.
OPTIMIZER_PREFIX = "optimizer."
OPTIMIZER_COUNTERS: tuple[str, ...] = (
    "batches",
    "plans_in",
    "plans_deduped",
    "predicates_pushed_down",
    "groupby_fusions",
    "masks_shared",
    "join_sides_fused",
    "join_side_cache_hits",
    "bn_sample_dispatches_saved",
    "window_sorts_shared",
)

# ---------------------------------------------------------------------------
# Bayesian-network engine counters
# ---------------------------------------------------------------------------
BN_ELIMINATION_PASSES = "bn.elimination_passes"
BN_FACTOR_CACHE_HITS = "bn.factor_cache_hits"
BN_FACTOR_CACHE_MISSES = "bn.factor_cache_misses"

# ---------------------------------------------------------------------------
# Cache gauges (synced from the cache statistics surfaces)
# ---------------------------------------------------------------------------
#: Cache hit/miss/entry gauges are ``cache.<tier>.<field>`` where tier is
#: one of ``result``, ``plan``, ``inference``, ``mask``, ``join_side``.
CACHE_PREFIX = "cache."
CACHE_TIERS: tuple[str, ...] = ("result", "plan", "inference", "mask", "join_side")

# ---------------------------------------------------------------------------
# Latency histograms
# ---------------------------------------------------------------------------
QUERY_SECONDS = "latency.query_seconds"
BATCH_SECONDS = "latency.batch_seconds"
#: Per-stage batch latency histograms are ``latency.stage.<stage-name>``.
STAGE_PREFIX = "latency.stage."

# Span / stage names used by the serving batch trace.
STAGE_COMPILE = "compile"
STAGE_ROUTE = "route"
STAGE_WARM_SAMPLES = "warm-samples"
STAGE_BN_DISPATCH = "bn-dispatch"
STAGE_OPTIMIZE = "optimize"
STAGE_COLUMNAR = "columnar"
STAGE_CACHE_PROBE = "cache-probe"

#: Stage names that get a ``latency.stage.*`` histogram per served batch.
BATCH_STAGES: tuple[str, ...] = (
    STAGE_COMPILE,
    STAGE_WARM_SAMPLES,
    STAGE_BN_DISPATCH,
    STAGE_COLUMNAR,
    STAGE_CACHE_PROBE,
)


# ---------------------------------------------------------------------------
# Scale tier (sharded worker pool + asyncio front-end)
# ---------------------------------------------------------------------------
#: Requests accepted by the asyncio front-end.
SCALE_REQUESTS = "scale.requests"
#: Requests shed with :class:`~repro.exceptions.ServingOverloadError`.
SCALE_OVERLOADS = "scale.overloads"
#: Micro-batches dispatched to the worker pool.
SCALE_DISPATCHES = "scale.dispatches"
#: Pool batches executed (one per ``ShardedWorkerPool.execute_batch``).
SCALE_POOL_BATCHES = "scale.pool.batches"
#: Generation broadcasts (refit / add_aggregate fan-outs) to workers.
SCALE_BROADCASTS = "scale.pool.broadcasts"
#: Instantaneous micro-batch queue depth (gauge, sampled at submit/flush).
SCALE_QUEUE_DEPTH = "scale.queue_depth"
#: Number of worker shards in the pool (gauge).
SCALE_SHARDS = "scale.shards"
#: Per-shard plan-occupancy counters are ``scale.shard.<shard-id>.plans``.
SCALE_SHARD_PREFIX = "scale.shard."
#: Power-of-two micro-batch size bucket bounds: 1, 2, 4, ... 1024.
MICROBATCH_BUCKETS: tuple[float, ...] = tuple(float(2**i) for i in range(11))
#: Histogram of micro-batch sizes (uses :data:`MICROBATCH_BUCKETS`).
MICROBATCH_SIZE = "scale.microbatch_size"
#: End-to-end front-end request latency histogram (submit -> result).
SCALE_REQUEST_SECONDS = "latency.scale.request_seconds"
#: Pool-side batch dispatch latency histogram (serialize -> reassemble).
SCALE_DISPATCH_SECONDS = "latency.scale.dispatch_seconds"

# ---------------------------------------------------------------------------
# Fault tolerance (supervised pool: crash detection, respawn, retry/failover)
# ---------------------------------------------------------------------------
#: Common prefix of every fault-tolerance counter.
SCALE_FAULTS_PREFIX = "scale.faults."
#: Worker deaths detected (pipe EOF, exitcode, missed heartbeat).
SCALE_FAULT_CRASHES = "scale.faults.crashes_detected"
#: Worker processes respawned by the supervisor.
SCALE_FAULT_RESPAWNS = "scale.faults.respawns"
#: Requests re-dispatched after a retryable failure (crash or timeout).
SCALE_FAULT_RETRIES = "scale.faults.retries"
#: Requests routed to a non-home shard because the home shard was down.
SCALE_FAULT_FAILOVERS = "scale.faults.failovers"
#: refit/add_aggregate log entries replayed into respawned workers.
SCALE_FAULT_REPLAYED_BROADCASTS = "scale.faults.replayed_broadcasts"
#: Heartbeat pings that got no reply within the heartbeat timeout.
SCALE_FAULT_HEARTBEAT_MISSES = "scale.faults.heartbeat_misses"
#: Requests served by the in-process fallback session (all shards down).
SCALE_FAULT_DEGRADED_REQUESTS = "scale.faults.degraded_requests"
#: Respawn latency histogram: crash detection -> warm, generation-coherent
#: replacement worker (includes the deterministic re-fit and log replay).
SCALE_RESPAWN_SECONDS = "latency.scale.respawn_seconds"


# ---------------------------------------------------------------------------
# Resource governance (memory governor, admission control, circuit breakers)
# ---------------------------------------------------------------------------
#: Common prefix of every governance metric.
GOVERNANCE_PREFIX = "governance."
#: Total governed cache bytes (gauge, sampled at every ``maintain()``).
GOVERNANCE_CACHE_BYTES = "governance.cache_bytes"
#: Highest total governed cache bytes ever observed (gauge).
GOVERNANCE_CACHE_BYTES_HIGH_WATER = "governance.cache_bytes_high_water"
#: The configured memory budget in bytes (gauge, set once).
GOVERNANCE_BUDGET_BYTES = "governance.budget_bytes"
#: Current pressure tier as an integer level: ok=0 soft=1 hard=2 critical=3.
GOVERNANCE_PRESSURE_LEVEL = "governance.pressure_level"
#: Entries evicted by the governor's pressure-relief passes.
GOVERNANCE_EVICTIONS = "governance.evictions"
#: Measured bytes freed by governor evictions and flushes.
GOVERNANCE_EVICTED_BYTES = "governance.evicted_bytes"
#: Critical-tier flush events (every governed cache dropped at once).
GOVERNANCE_FLUSHES = "governance.flushes"
#: Cache insertions refused because the governor denied admission.
GOVERNANCE_CACHE_ADMISSION_REJECTIONS = "governance.cache_admission_rejections"
#: Requests admitted by the front-end admission controller.
GOVERNANCE_REQUESTS_ADMITTED = "governance.requests_admitted"
#: Requests shed by the admission controller (all priorities).
GOVERNANCE_REQUESTS_REJECTED = "governance.requests_rejected"
#: Per-priority shed counters are ``governance.rejected.<priority>``.
GOVERNANCE_REJECTED_PREFIX = "governance.rejected."
#: Queries cancelled via an explicit CancelToken.
GOVERNANCE_CANCELLED = "governance.cancelled"
#: Queries that died on an expired deadline mid-execution.
GOVERNANCE_DEADLINE_EXCEEDED = "governance.deadline_exceeded"
#: Per-shard circuit breakers transitioning closed -> open.
GOVERNANCE_BREAKER_OPENED = "governance.breaker.opened"
#: Dispatches refused because a breaker was open.
GOVERNANCE_BREAKER_REJECTIONS = "governance.breaker.rejections"
#: Half-open probe dispatches admitted through an open breaker.
GOVERNANCE_BREAKER_PROBES = "governance.breaker.half_open_probes"
#: Per-cache governed byte gauges are ``governance.cache.<name>.bytes``.
GOVERNANCE_CACHE_GAUGE_PREFIX = "governance.cache."


def route_counter(route: str) -> str:
    """The registry counter name for one served route."""
    return ROUTE_PREFIX + route


def optimizer_counter(field: str) -> str:
    """The registry counter name for one optimizer rewrite counter."""
    return OPTIMIZER_PREFIX + field


def cache_gauge(tier: str, metric: str) -> str:
    """The registry gauge name for one cache-tier statistic."""
    return f"{CACHE_PREFIX}{tier}.{metric}"


def stage_histogram(stage: str) -> str:
    """The registry histogram name for one batch stage."""
    return STAGE_PREFIX + stage


def shard_counter(shard_id: int) -> str:
    """The registry counter name for one shard's plan occupancy."""
    return f"{SCALE_SHARD_PREFIX}{shard_id}.plans"


def governed_cache_gauge(cache: str) -> str:
    """The registry gauge name for one governed cache's byte size."""
    return f"{GOVERNANCE_CACHE_GAUGE_PREFIX}{cache}.bytes"


def rejected_counter(priority: str) -> str:
    """The registry counter name for one priority class's shed requests."""
    return GOVERNANCE_REJECTED_PREFIX + priority
