"""Observability: structured tracing, metrics, and EXPLAIN ANALYZE.

The system-wide measurement substrate: :class:`Tracer` produces per-request
and per-batch span trees through every layer (compile → optimize → route →
kernels → cache probe → BN elimination), and :class:`MetricsRegistry` is the
single accumulation point for counters, gauges, and log-bucketed latency
histograms.  ``repro.obs.names`` freezes the public metric names and bucket
boundaries.

Entry points: ``Themis.query(..., explain="analyze")``,
``Themis.serve(trace=True)``, and the ``repro-experiments obs`` report.
"""

from . import names
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    format_seconds,
)

__all__ = [
    "names",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "format_seconds",
]
