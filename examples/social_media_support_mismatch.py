"""Open-world queries over a 100-percent-biased "social media" style sample.

The paper motivates Themis with samples that are a *selection* of the
population — e.g. social-media users are a 100-percent-biased sample of a
country's population — so the sample's support does not cover the population.
Pure reweighting can never answer queries about tuples outside that support;
Themis's Bayesian network component can (Sec. 4.3, Fig. 5).

This example builds the Corners sample (only flights leaving CA/NY/FL/WA) and
shows how AQP, IPF, and Themis answer queries about states that are entirely
missing from the sample.

Run with:  python examples/social_media_support_mismatch.py
"""

from __future__ import annotations

from repro.core import ReweightedSampleEvaluator
from repro.experiments import SMALL_SCALE, build_aggregates, fit_methods, flights_bundle
from repro.experiments.reporting import format_table
from repro.metrics import percent_difference


def main() -> None:
    scale = SMALL_SCALE
    bundle = flights_bundle(scale)
    sample = bundle.sample("Corners")  # 100% biased: only corner-state departures
    observed_states = {row[1] for row in sample.iter_rows()}
    print(f"states present in the sample: {sorted(observed_states)}")

    aggregates = build_aggregates(bundle, n_two_dimensional=4)
    fitted = fit_methods(
        sample,
        aggregates,
        population_size=bundle.population_size,
        scale=scale,
        methods=("AQP", "IPF", "Hybrid"),
    )

    # Ask about departures from states that are NOT in the sample at all.
    missing_states = [
        state
        for state in bundle.population.schema["origin_state"].domain.values
        if state not in observed_states
    ][:5]
    rows = []
    for state in missing_states:
        truth = bundle.population.count({"origin_state": state})
        row = {"origin_state": state, "true count": truth}
        for method in ("AQP", "IPF", "Hybrid"):
            estimate = fitted[method].point({"origin_state": state})
            row[method] = round(estimate, 1)
            row[f"{method} err"] = round(percent_difference(truth, estimate), 1)
        rows.append(row)
    print()
    print(format_table(rows))
    print(
        "\nAQP and IPF can only answer 0 for unseen states (error 200); Themis's "
        "hybrid falls back to the Bayesian network and recovers sensible counts."
    )


if __name__ == "__main__":
    main()
