"""Quickstart: debias a tiny biased sample with Themis.

This walks through the full Themis workflow on the paper's motivating
scenario, shrunk to a few thousand rows so it runs in seconds:

1. generate a "population" of flights (normally unavailable!);
2. draw a sample biased towards four hub states;
3. register population aggregates (the kind of statistics a government
   transparency report would publish);
4. fit Themis and ask open-world SQL queries.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Themis, ThemisConfig, parse_sql, percent_difference
from repro.aggregates import aggregates_from_population
from repro.data import CORNER_STATES, biased_sample, generate_flights_population
from repro.sql.engine import WeightedQueryEngine


def main() -> None:
    # --- 1. The (normally unavailable) population -------------------------
    population = generate_flights_population(n_rows=20_000, seed=7)
    population_engine = WeightedQueryEngine(population)

    # --- 2. A biased sample: 90% of rows come from four hub states --------
    sample = biased_sample(
        population,
        {"origin_state": list(CORNER_STATES)},
        fraction=0.1,
        bias=0.9,
        seed=1,
    )
    print(f"population rows: {population.n_rows}, sample rows: {sample.n_rows}")

    # --- 3. Population aggregates (the apriori knowledge Γ) ----------------
    aggregates = aggregates_from_population(
        population,
        [
            ("origin_state",),
            ("fl_date",),
            ("origin_state", "dest_state"),
            ("distance", "elapsed_time"),
        ],
    )

    # --- 4. Fit Themis and ask queries -------------------------------------
    themis = Themis(ThemisConfig(seed=0))
    themis.load_sample(sample, name="flights")
    themis.add_aggregates(aggregates)
    model = themis.fit()
    print("fitted model:", model.summary()["bn_edges"])

    queries = [
        "SELECT COUNT(*) FROM flights WHERE origin_state = 'CA' AND dest_state = 'WA'",
        "SELECT COUNT(*) FROM flights WHERE origin_state = 'OH' AND dest_state = 'CA'",
        "SELECT COUNT(*) FROM flights WHERE origin_state = 'ME'",
        "SELECT origin_state, COUNT(*) FROM flights GROUP BY origin_state",
    ]
    for sql in queries:
        estimate = themis.sql(sql)
        truth = population_engine.execute(parse_sql(sql).query)
        print("\n" + sql)
        if hasattr(estimate, "as_dict"):
            shown = sorted(estimate.as_dict().items())[:5]
            print(f"  themis (first groups): {shown}")
            print(f"  truth  (first groups): {sorted(truth.as_dict().items())[:5]}")
        else:
            print(
                f"  themis = {estimate:,.0f}   truth = {truth:,.0f}   "
                f"percent difference = {percent_difference(truth, estimate):.1f}"
            )


if __name__ == "__main__":
    main()
