"""Batched BN inference: cold-batch speedup from shared elimination passes.

A cold batch of out-of-sample point queries is the serving layer's worst
case: every query needs exact Bayesian-network inference, classically one
variable-elimination pass each.  The batched engine groups queries by their
*evidence signature* (the set of attributes they fix) and pays one
elimination pass per signature, answering each group with a single
vectorized lookup into the shared eliminated factor — same answers, bit for
bit, at a fraction of the cost.

Run with:  python examples/batched_inference.py
"""

from __future__ import annotations

import time

from repro import ExactInference, Themis, ThemisConfig
from repro.aggregates import aggregates_from_population
from repro.data import CORNER_STATES, biased_sample, generate_flights_population
from repro.query import PointQuery


def main() -> None:
    population = generate_flights_population(n_rows=20_000, seed=7)
    sample = biased_sample(
        population,
        {"origin_state": list(CORNER_STATES)},
        fraction=0.1,
        bias=0.9,
        seed=1,
    )
    aggregates = aggregates_from_population(
        population,
        [("origin_state",), ("fl_date",), ("origin_state", "dest_state")],
    )

    themis = Themis(ThemisConfig(seed=0))
    themis.load_sample(sample, name="flights")
    themis.add_aggregates(aggregates)
    model = themis.fit()

    # A BN-heavy workload: origin/destination pairs that never made it into
    # the biased sample, in three mixed evidence signatures.  Every one of
    # these routes to exact inference.
    weighted = model.weighted_sample
    schema = weighted.schema
    signatures = [
        ("origin_state", "dest_state"),
        ("fl_date", "origin_state"),
        ("fl_date", "dest_state"),
    ]
    workload: list[dict] = []
    for attributes in signatures:
        domains = [schema[name].domain.values for name in attributes]
        for first in domains[0]:
            for second in domains[1]:
                assignment = dict(zip(attributes, (first, second)))
                if not weighted.contains(assignment):
                    workload.append(assignment)
    print(
        f"workload: {len(workload)} out-of-sample point queries across "
        f"{len(signatures)} evidence signatures"
    )

    network = model.bayes_net_result.network
    population_size = model.population_size

    # Per-query inference: one variable-elimination pass per query (what
    # every out-of-sample point query cost before the batched engine).
    start = time.perf_counter()
    per_query = [
        population_size * ExactInference(network).probability_or_zero(assignment)
        for assignment in workload
    ]
    per_query_seconds = time.perf_counter() - start
    print(
        f"per-query inference:  {len(workload)} elimination passes in "
        f"{per_query_seconds * 1000:7.1f} ms "
        f"({len(workload) / per_query_seconds:7,.0f} q/s)"
    )

    # Cold batch through the serving stack: plans are built, caches are
    # empty, and the executor dispatches all BN-routed point plans through
    # one batched call — one elimination pass per signature.
    session = themis.serve(result_cache_size=2 * len(workload))
    cold = session.execute_batch([PointQuery(a) for a in workload])
    print(
        f"cold batched serving: {cold.bn_elimination_passes:3d} elimination "
        f"passes in {cold.total_seconds * 1000:7.1f} ms "
        f"({cold.queries_per_second:7,.0f} q/s)"
    )
    print(f"cold-batch speedup:   {per_query_seconds / cold.total_seconds:.1f}x")

    # Batching shares cost, never changes answers.
    assert cold.results() == per_query, "batched answers must be bit-identical"
    print("bit-identity check:   batched answers == per-query answers")

    # The second batch doesn't even eliminate: answers come from the result
    # cache, factors from the per-signature cache.
    warm = session.execute_batch([PointQuery(a) for a in workload])
    print(
        f"warm batched serving: {warm.bn_elimination_passes:3d} elimination "
        f"passes in {warm.total_seconds * 1000:7.1f} ms "
        f"({warm.queries_per_second:7,.0f} q/s, "
        f"{warm.cache_hits} result-cache hits)"
    )


if __name__ == "__main__":
    main()
