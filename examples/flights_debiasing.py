"""Flights case study: compare every debiasing technique on one biased sample.

This mirrors the paper's Sec. 6.4 setup at laptop scale: the SCorners sample
(90 percent of rows from CA/NY/FL/WA) is debiased with uniform reweighting
(AQP), linear regression, IPF, the BB Bayesian network, and Themis's hybrid,
then heavy- and light-hitter point queries are compared against the ground
truth population.

Run with:  python examples/flights_debiasing.py
"""

from __future__ import annotations

from repro.experiments import (
    SMALL_SCALE,
    build_aggregates,
    fit_methods,
    flights_bundle,
    point_query_errors,
    point_query_workload,
)
from repro.experiments.reporting import format_table
from repro.metrics import ErrorSummary


def main() -> None:
    scale = SMALL_SCALE
    bundle = flights_bundle(scale)
    sample = bundle.sample("SCorners")
    print(
        f"population rows: {bundle.population_size}, "
        f"SCorners sample rows: {sample.n_rows}"
    )

    # Full 1D aggregates plus four pruned 2D aggregates (the paper's B = 4 setup).
    aggregates = build_aggregates(bundle, n_two_dimensional=4)
    print("aggregate attribute sets:", [a.attributes for a in aggregates])

    methods = ("AQP", "LinReg", "IPF", "BB", "Hybrid")
    fitted = fit_methods(
        sample,
        aggregates,
        population_size=bundle.population_size,
        scale=scale,
        methods=methods,
    )

    attribute_sets = [
        ("origin_state", "dest_state"),
        ("origin_state", "elapsed_time"),
        ("fl_date", "dest_state", "distance"),
    ]
    rows = []
    for kind in ("heavy", "light"):
        workload = point_query_workload(bundle, attribute_sets, kind, 60, seed=3)
        errors = point_query_errors(fitted.evaluators, workload)
        for method in methods:
            summary = ErrorSummary.from_errors(errors[method])
            rows.append(
                {
                    "hitters": kind,
                    "method": method,
                    "median error": round(summary.median, 1),
                    "mean error": round(summary.mean, 1),
                }
            )
    print()
    print(format_table(rows))
    print(
        "\nPaper shape (Fig. 3): the aggregate-driven methods (IPF, BB, Hybrid) "
        "beat uniform AQP reweighting, with the hybrid and the Bayesian network "
        "far ahead on light hitters that are missing from the sample."
    )


if __name__ == "__main__":
    main()
