"""Observability: EXPLAIN ANALYZE, traced serving, and the metrics registry.

Every layer of the serving stack accepts an optional tracer.  This script
shows the three entry points: ``themis.query(..., explain="analyze")`` for
one query, ``themis.serve(trace=True)`` for session traffic (each outcome
and batch carries its span tree), and the session's ``MetricsRegistry`` /
per-window cache statistics for dashboard-style monitoring.

Run with:  python examples/observability.py
"""

from __future__ import annotations

import io

from repro import Themis, ThemisConfig, Tracer
from repro.aggregates import aggregates_from_population
from repro.data import CORNER_STATES, biased_sample, generate_flights_population
from repro.obs import names


def main() -> None:
    population = generate_flights_population(n_rows=20_000, seed=7)
    sample = biased_sample(
        population,
        {"origin_state": list(CORNER_STATES)},
        fraction=0.1,
        bias=0.9,
        seed=1,
    )
    aggregates = aggregates_from_population(
        population,
        [("origin_state",), ("fl_date",), ("origin_state", "dest_state")],
    )

    themis = Themis(ThemisConfig(seed=0))
    themis.load_sample(sample, name="flights")
    themis.add_aggregates(aggregates)
    model = themis.fit()

    # -- EXPLAIN ANALYZE: the operator tree plus the timed span tree --
    statement = (
        "SELECT origin_state, COUNT(*) FROM flights "
        "WHERE elapsed_time <= 120 AND dest_state IN ('NY', 'WA') "
        "GROUP BY origin_state"
    )
    explained = themis.query(statement, explain="analyze")
    print(f"SQL: {statement}")
    print(explained.explain_analyze())
    assert explained.result == themis.query(statement)  # tracing is read-only
    print()

    # -- traced serving: every batch carries its span tree --
    session = themis.serve(trace=True)
    workload = [
        "SELECT COUNT(*) FROM flights WHERE origin_state = 'CA'",
        "SELECT AVG(elapsed_time) FROM flights WHERE dest_state IN ('NY', 'WA')",
        "SELECT origin_state, COUNT(*) FROM flights "
        "WHERE elapsed_time <= 120 GROUP BY origin_state",
        "SELECT COUNT(*) FROM flights WHERE dest_state IN ('WA', 'NY')",
    ]
    cold = session.execute_batch(workload)
    print("cold batch span tree:")
    print(cold.trace.render())
    print()

    # -- per-window cache statistics: lifetime vs. recent hit rates --
    session.reset_cache_window()
    warm = session.execute_batch(workload)
    lifetime = session.cache_statistics()["result_cache"]
    window = session.cache_statistics(window=True)["result_cache"]
    print(
        f"result cache  lifetime: {lifetime['hits']} hits / "
        f"{lifetime['misses']} misses (rate {lifetime['hit_rate']:.2f})"
    )
    print(
        f"result cache  warm window: {window['hits']} hits / "
        f"{window['misses']} misses (rate {window['hit_rate']:.2f})"
    )
    assert warm.cache_hits == len(workload)
    print()

    # -- the registry: one accumulation point for every serving counter --
    metrics = session.metrics
    print(
        f"queries served:  {metrics.value(names.QUERIES_SERVED):.0f} "
        f"(registry) == {session.statistics.queries_served} (statistics view)"
    )
    columnar = metrics.histogram(names.stage_histogram("columnar")).summary()
    print(
        f"columnar stage:  {columnar['count']} batches, "
        f"p50 <= {columnar['p50'] * 1e3:.3f} ms"
    )

    # -- JSONL export: flat, parent-linked spans for external tooling --
    tracer = Tracer()
    model.sample_evaluator.engine.execute_batch(workload, tracer=tracer)
    buffer = io.StringIO()
    n_rows = tracer.export_jsonl(buffer)
    print(f"exported {n_rows} spans as JSONL "
          f"({len(buffer.getvalue().splitlines())} lines)")


if __name__ == "__main__":
    main()
