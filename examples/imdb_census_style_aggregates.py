"""IMDB case study: partial aggregate coverage and a dense attribute.

The IMDB dataset in the paper has eight attributes but only five of them are
covered by population aggregates, and one uncovered attribute (``name``) is
extremely dense.  This example shows two effects the paper discusses:

* reweighting and the Bayesian network both fix queries over covered
  attributes (rating, country, ...), and
* queries touching the dense uncovered ``name`` attribute are where the
  Bayesian network struggles and the hybrid's sample component matters.

Run with:  python examples/imdb_census_style_aggregates.py
"""

from __future__ import annotations

from repro.experiments import (
    SMALL_SCALE,
    build_aggregates,
    fit_methods,
    imdb_bundle,
    point_query_workload,
    point_query_errors,
)
from repro.experiments.reporting import format_table
from repro.metrics import ErrorSummary


def main() -> None:
    scale = SMALL_SCALE
    bundle = imdb_bundle(scale)
    sample = bundle.sample("SR159")  # biased towards ratings 1, 5, and 9
    print(
        f"population rows: {bundle.population_size}, SR159 sample rows: {sample.n_rows}"
    )

    aggregates = build_aggregates(bundle, n_two_dimensional=4)
    fitted = fit_methods(
        sample,
        aggregates,
        population_size=bundle.population_size,
        scale=scale,
        methods=("AQP", "IPF", "BB", "Hybrid"),
    )

    covered_sets = [("movie_year", "rating"), ("movie_country", "rating")]
    dense_sets = [("name", "rating"), ("name", "gender")]
    rows = []
    for label, attribute_sets in (("covered", covered_sets), ("dense name", dense_sets)):
        workload = point_query_workload(bundle, attribute_sets, "random", 60, seed=11)
        errors = point_query_errors(fitted.evaluators, workload)
        for method, values in errors.items():
            rows.append(
                {
                    "queries": label,
                    "method": method,
                    "median error": round(ErrorSummary.from_errors(values).median, 1),
                }
            )
    print()
    print(format_table(rows))
    print(
        "\nPaper shape (Sec. 6.4/6.5): on aggregate-covered attributes the "
        "debiasing methods beat uniform AQP reweighting; queries touching the "
        "dense, uncovered name attribute stay hard for every method because "
        "the aggregates carry no information about it."
    )


if __name__ == "__main__":
    main()
