"""Batch serving: answer interactive query traffic through a serving session.

The one-shot workflow of ``examples/quickstart.py`` refits nothing but also
reuses nothing: every ``themis.sql()`` call parses, plans, and evaluates from
scratch.  This example drives the same fitted model through the serving
subsystem instead — a :class:`~repro.serving.ServingSession` plans each query
into a canonical key, batches plans that share GROUP BY columns, memoizes BN
inference, and serves repeated queries straight from the result cache.

Run with:  python examples/batch_serving.py
"""

from __future__ import annotations

import time

from repro import Themis, ThemisConfig
from repro.aggregates import aggregates_from_population
from repro.data import CORNER_STATES, biased_sample, generate_flights_population


def main() -> None:
    population = generate_flights_population(n_rows=20_000, seed=7)
    sample = biased_sample(
        population,
        {"origin_state": list(CORNER_STATES)},
        fraction=0.1,
        bias=0.9,
        seed=1,
    )
    aggregates = aggregates_from_population(
        population,
        [("origin_state",), ("fl_date",), ("origin_state", "dest_state")],
    )

    themis = Themis(ThemisConfig(seed=0))
    themis.load_sample(sample, name="flights")
    themis.add_aggregates(aggregates)
    themis.fit()

    # A repetitive workload, as dashboards and interactive sessions produce.
    # Note the second and third queries are the same query with its WHERE
    # conjuncts reordered: the planner canonicalizes them to one plan key.
    workload = [
        "SELECT origin_state, COUNT(*) FROM flights GROUP BY origin_state",
        "SELECT COUNT(*) FROM flights WHERE origin_state = 'CA' AND dest_state = 'WA'",
        "SELECT COUNT(*) FROM flights WHERE dest_state = 'WA' AND origin_state = 'CA'",
        "SELECT dest_state, COUNT(*) FROM flights GROUP BY dest_state",
        "SELECT COUNT(*) FROM flights WHERE origin_state = 'ME'",
    ] * 8

    session = themis.serve()

    start = time.perf_counter()
    cold = session.execute_batch(workload)
    cold_seconds = time.perf_counter() - start
    print(
        f"cold batch: {len(cold)} queries in {cold_seconds * 1000:.1f} ms "
        f"({cold.queries_per_second:,.0f} q/s, {cold.cache_hits} cache hits)"
    )

    start = time.perf_counter()
    warm = session.execute_batch(workload)
    warm_seconds = time.perf_counter() - start
    print(
        f"warm batch: {len(warm)} queries in {warm_seconds * 1000:.1f} ms "
        f"({warm.queries_per_second:,.0f} q/s, {warm.cache_hits} cache hits)"
    )
    print(f"warm speedup: {cold_seconds / warm_seconds:.1f}x")

    # Every serving answer is identical to the one-shot facade's.
    for outcome, statement in zip(cold, workload):
        single = themis.query(statement)
        matches = (
            outcome.result.as_dict() == single.as_dict()
            if hasattr(single, "as_dict")
            else outcome.result == single
        )
        assert matches, statement

    print("\nsession statistics:")
    for key, value in session.describe().items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
