"""The logical-plan IR: compile once, route, execute with columnar kernels.

Every query — SQL text or AST — compiles into one ``LogicalPlan``: a
``Scan -> Filter -> [Group ->] Aggregate`` operator tree under a ``Route``
node, with predicates canonicalized into domain-code buckets and a hashable
plan key derived from the tree.  ``Themis.query(..., explain=True)`` returns
that compiled plan next to the answer, and the mask cache makes repeated
filters nearly free.

Run with:  python examples/plan_ir.py
"""

from __future__ import annotations

import time

from repro import Themis, ThemisConfig
from repro.aggregates import aggregates_from_population
from repro.data import CORNER_STATES, biased_sample, generate_flights_population


def main() -> None:
    population = generate_flights_population(n_rows=20_000, seed=7)
    sample = biased_sample(
        population,
        {"origin_state": list(CORNER_STATES)},
        fraction=0.1,
        bias=0.9,
        seed=1,
    )
    aggregates = aggregates_from_population(
        population,
        [("origin_state",), ("fl_date",), ("origin_state", "dest_state")],
    )

    themis = Themis(ThemisConfig(seed=0))
    themis.load_sample(sample, name="flights")
    themis.add_aggregates(aggregates)
    model = themis.fit()

    # -- explain=True: the answer plus the compiled plan that produced it --
    statement = (
        "SELECT origin_state, COUNT(*) FROM flights "
        "WHERE elapsed_time <= 120 AND dest_state IN ('NY', 'WA') "
        "GROUP BY origin_state"
    )
    explained = themis.query(statement, explain=True)
    print(f"SQL: {statement}")
    print(f"route: {explained.route}   plan key: {explained.plan.key[:2]}...")
    print(explained.explain())
    print(f"groups returned: {len(explained.result)}")
    print()

    # -- one canonicalization: reordered conjuncts share one plan key --
    reordered = themis.query(
        "SELECT origin_state, COUNT(*) FROM flights "
        "WHERE dest_state IN ('WA', 'NY') AND elapsed_time <= 120 "
        "GROUP BY origin_state",
        explain=True,
    )
    assert reordered.plan.key == explained.plan.key
    print("reordered WHERE clause -> identical canonical plan key")
    assert reordered.result == explained.result  # QueryResult equality: exact
    print("...and (of course) the identical answer, bit for bit")
    print()

    # -- the mask cache: repeated filters cost masks only once --
    engine = model.sample_evaluator.engine
    workload = [
        "SELECT AVG(elapsed_time) FROM flights "
        "WHERE dest_state IN ('NY', 'WA') AND elapsed_time <= 90",
        "SELECT fl_date, COUNT(*) FROM flights "
        "WHERE dest_state IN ('CA', 'FL') GROUP BY fl_date",
        "SELECT COUNT(*) FROM flights WHERE elapsed_time >= 180 AND fl_date <= '04'",
    ]
    misses_start = engine.mask_cache.misses
    start = time.perf_counter()
    for query in workload:
        themis.query(query)
    first_pass = time.perf_counter() - start
    misses_cold = engine.mask_cache.misses - misses_start

    start = time.perf_counter()
    for query in workload:
        themis.query(query)
    second_pass = time.perf_counter() - start
    misses_warm = engine.mask_cache.misses - misses_start - misses_cold

    print(
        f"first pass:  {first_pass * 1000:6.1f} ms "
        f"({misses_cold} predicate masks computed)"
    )
    print(
        f"second pass: {second_pass * 1000:6.1f} ms "
        f"({misses_warm} new masks — "
        "every filter served from the (generation, predicate) cache)"
    )


if __name__ == "__main__":
    main()
