"""Join fusion: serve a mixed join/non-join batch through the optimizer.

Self-join GROUP BY queries (the paper's Table 5 Q6 shape) are the most
expensive plans Themis serves: each one aggregates two *sides* into
``(join key, group)`` weight totals before merging them, and the hybrid
evaluator repeats that work on every one of the BN's ``K`` generated
samples.  This example drives a serving batch that mixes join plans with
ordinary GROUP BY/COUNT traffic and shows the join-aware batch optimizer at
work: join plans sharing a side (even written with reordered or padded
filters) compute its totals once, the side totals persist across batches in
the join-side cache, and the per-generated-sample BN work is batched per
sample instead of per plan — all with answers bit-identical to serving each
query alone.

Run with:  python examples/join_fusion.py
"""

from __future__ import annotations

import time

from repro import Themis, ThemisConfig
from repro.aggregates import aggregates_from_population
from repro.data import CORNER_STATES, biased_sample, generate_flights_population
from repro.query.ast import Comparison, JoinGroupByQuery, Predicate


def main() -> None:
    population = generate_flights_population(n_rows=20_000, seed=7)
    sample = biased_sample(
        population,
        {"origin_state": list(CORNER_STATES)},
        fraction=0.1,
        bias=0.9,
        seed=1,
    )
    aggregates = aggregates_from_population(
        population,
        [("origin_state",), ("fl_date",), ("origin_state", "dest_state")],
    )

    themis = Themis(ThemisConfig(seed=0, n_generated_samples=3))
    themis.load_sample(sample, name="flights")
    themis.add_aggregates(aggregates)
    themis.fit()

    # "Which destination markets pair with which origin markets on the same
    # day?" — self-joins on fl_date, grouped two ways, plus the dashboard's
    # usual GROUP BY traffic.  The second and third joins share their sides
    # with the first (one filter reordered, one padded with an implied
    # bound), so the optimizer schedules each distinct side once.
    filters = (
        Predicate("elapsed_time", Comparison.LE, 4),
        Predicate("distance", Comparison.GE, 2),
    )
    joins = [
        JoinGroupByQuery(
            "fl_date", "fl_date", "origin_state", "dest_state",
            left_predicates=filters,
        ),
        JoinGroupByQuery(
            "fl_date", "fl_date", "origin_state", "dest_state",
            left_predicates=filters[::-1],  # reordered: same side
        ),
        JoinGroupByQuery(
            "fl_date", "fl_date", "origin_state", "dest_state",
            left_predicates=filters + (Predicate("elapsed_time", Comparison.LE, 5),),
        ),
        JoinGroupByQuery(
            "fl_date", "fl_date", "dest_state", "origin_state",
            right_predicates=filters,
        ),
    ]
    workload = joins * 3 + [
        "SELECT origin_state, COUNT(*) FROM flights GROUP BY origin_state",
        "SELECT dest_state, COUNT(*) FROM flights GROUP BY dest_state",
        "SELECT COUNT(*) FROM flights WHERE origin_state = 'CA'",
    ]

    session = themis.serve()

    start = time.perf_counter()
    cold = session.execute_batch(workload)
    cold_seconds = time.perf_counter() - start
    print(
        f"cold batch: {len(cold)} queries in {cold_seconds * 1000:.1f} ms "
        f"({cold.queries_per_second:,.0f} q/s)"
    )
    print("optimizer counters:", cold.optimizer)

    # Same join family again: the sides come out of the join-side cache
    # (the result cache already answers the repeated plans themselves, so
    # probe with a fresh pairing that reuses the cached sides).
    fresh_join = JoinGroupByQuery(
        "fl_date", "fl_date", "origin_state", "dest_state",
        left_predicates=filters,
        right_predicates=filters,
    )
    warm = session.execute_batch([fresh_join])
    print("fresh pairing over cached sides:", warm.optimizer)

    # Bit-identity: every batched answer equals serving the query alone.
    reference = themis.serve(optimize=False).execute_batch(workload)
    assert cold.results() == reference.results()
    print("bit-identity vs per-plan serving: OK")

    print("\nsession optimizer statistics:")
    for key, value in session.statistics.as_dict()["optimizer"].items():
        print(f"  {key}: {value}")
    print("join-side cache:", session.cache_statistics()["join_side_cache"])


if __name__ == "__main__":
    main()
