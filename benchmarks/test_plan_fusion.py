"""Benchmark: batch-aware plan optimizer vs. per-plan execution, both cold.

Not a paper artefact — this measures the plan-level rewrites added on top of
the reproduction's logical-plan IR.  Acceptance bars:

* a **cold** duplicate- and shared-filter-heavy batch served through the
  optimized schedule must be at least 2x faster than the per-plan reference
  loop (``optimize=False``);
* answers must be bit-identical (asserted inside the experiment with exact
  ``==``);
* the rewrite counters must prove every rewrite fired: plans deduped,
  predicates pushed down by normalization, group-by fusions, masks shared.
"""

from repro.experiments import run_plan_fusion


def test_plan_fusion_throughput(run_experiment, scale):
    result = run_experiment(run_plan_fusion, scale)
    phases = {row["phase"]: row for row in result.rows}
    assert set(phases) == {"per-plan", "optimized"}

    per_plan = phases["per-plan"]
    optimized = phases["optimized"]

    # Every rewrite fired: exact duplicates and redundant-conjunct variants
    # collapsed, normalization eliminated implied conjuncts, group-by
    # families fused into shared scatter-add passes, and distinct plans
    # reused each other's masks.  (Bit-identity between the phases is
    # asserted inside the experiment itself, with exact equality.)
    assert optimized["plans_deduped"] > 0
    assert optimized["predicates_pushed_down"] > 0
    assert optimized["groupby_fusions"] > 0
    assert optimized["masks_shared"] > 0

    # The headline claim: the optimizer at least doubles cold-batch
    # throughput on the duplicate/shared-filter workload.
    assert optimized["speedup"] >= 2.0
    assert optimized["queries_per_second"] >= 2.0 * per_plan["queries_per_second"]
