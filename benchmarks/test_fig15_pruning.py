"""Benchmark: regenerate Fig. 15 (pruned vs random aggregate selection on CHILD)."""

import numpy as np

from repro.experiments import run_pruning


def test_fig15_pruning(run_experiment, scale):
    result = run_experiment(run_pruning, scale)
    selections = {row["selection"] for row in result.rows}
    assert {"OPT", "Prune", "Rand"} <= selections
    assert np.isfinite([row["avg_percent_difference"] for row in result.rows]).all()

    def error(selection, budget, method):
        return result.filter_rows(
            selection=selection, n_2d_aggregates=budget, method=method
        )[0]["avg_percent_difference"]

    budgets = sorted(
        {row["n_2d_aggregates"] for row in result.rows if row["selection"] == "Prune"}
    )
    # Paper shape: with a generous budget the pruned selection is at least as
    # good as the random one, and adding pruned aggregates does not hurt BB.
    assert error("Prune", budgets[-1], "BB") <= error("Rand", budgets[-1], "BB") + 5.0
    assert error("Prune", budgets[-1], "BB") <= error("Prune", budgets[0], "BB") + 5.0
