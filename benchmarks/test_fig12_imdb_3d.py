"""Benchmark: regenerate Fig. 12 (IMDB error vs number of 3D aggregates)."""

import numpy as np

from repro.experiments import run_nd_sweep


def test_fig12_imdb_3d(run_experiment, scale):
    result = run_experiment(run_nd_sweep, "imdb", 3, scale)
    assert len(result.rows) == 2 * 5 * 4
    assert np.isfinite([row["avg_percent_difference"] for row in result.rows]).all()
