"""Benchmark: regenerate Table 8 (solver times vs number of aggregates)."""

from repro.experiments import run_solver_time


def test_table8_solver_time(run_experiment, scale):
    result = run_experiment(run_solver_time, scale)
    assert len(result.rows) == 9  # the 1D/2D budget configurations
    assert all(row["linreg_seconds"] >= 0 for row in result.rows)
    # Paper shape: solver time grows as 1D aggregates are added (compare the
    # one-aggregate and five-aggregate configurations for IPF).
    one = result.filter_rows(n_1d_aggregates=1, n_2d_aggregates=0)[0]
    five = result.filter_rows(n_1d_aggregates=5, n_2d_aggregates=0)[0]
    assert five["ipf_seconds"] >= one["ipf_seconds"] * 0.5
