"""Benchmark: regenerate Fig. 14 (LinReg vs IPF vs AQP)."""

from repro.experiments import run_reweighting_comparison


def test_fig14_reweighting(run_experiment, scale):
    result = run_experiment(run_reweighting_comparison, scale)
    assert len(result.rows) == 4 * 3  # samples x methods

    def row(sample, method):
        return result.filter_rows(sample=sample, method=method)[0]

    # Paper shape on the canonical biased-but-supported sample (SCorners):
    # aggregate-driven reweighting (IPF or LinReg) beats uniform reweighting.
    # The IPF-vs-LinReg ordering on every sample needs the full-size dataset;
    # at the reduced default scale only the AQP comparison is asserted.
    aqp = row("SCorners", "AQP")
    assert min(row("SCorners", "IPF")["mean"], row("SCorners", "LinReg")["mean"]) < aqp["mean"]
    assert row("SCorners", "IPF")["median"] <= aqp["median"] + 1e-9
