"""Benchmark: regenerate Table 7 (average point-query execution time)."""

from repro.experiments import run_query_execution_time


def test_table7_query_time(run_experiment, scale):
    result = run_experiment(run_query_execution_time, scale)
    assert len(result.rows) == 6  # RW plus the five BN modes
    # Paper claim: interactive response times (well under a second per query).
    assert all(row["avg_query_seconds"] < 0.5 for row in result.rows)
