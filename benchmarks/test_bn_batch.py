"""Benchmark: batched BN inference throughput on a BN-heavy workload.

Not a paper artefact — this measures the batched variable-elimination engine
added on top of the reproduction.  The acceptance bar: a cold batch of
out-of-sample point queries (every one answered by exact BN inference) must
serve at least 2x faster than per-query inference, because the batch pays
one elimination pass per evidence signature instead of one per query.
"""

from repro.experiments import run_bn_batch


def test_bn_batch_throughput(run_experiment, scale):
    result = run_experiment(run_bn_batch, scale)
    phases = {row["phase"]: row for row in result.rows}
    assert set(phases) == {"per-query", "batch-cold", "batch-warm"}

    per_query = phases["per-query"]
    cold = phases["batch-cold"]
    warm = phases["batch-warm"]

    # The workload shares few signatures among many queries, so the batch
    # pays far fewer elimination passes than the per-query loop...
    assert per_query["elimination_passes"] == result.parameters["n_queries"]
    assert cold["elimination_passes"] == result.parameters["n_signatures"]
    assert warm["elimination_passes"] == 0  # fully cached the second time

    # ...which is the headline claim: cold BN-heavy batches serve >= 2x
    # faster than per-query inference (warm batches faster still).
    assert cold["speedup_vs_per_query"] >= 2.0
    assert cold["queries_per_second"] >= 2.0 * per_query["queries_per_second"]
    assert warm["queries_per_second"] >= cold["queries_per_second"]
