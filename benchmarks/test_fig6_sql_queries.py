"""Benchmark: regenerate Fig. 6 (the six IDEBench-style SQL queries of Table 5)."""

import numpy as np

from repro.experiments import run_sql_queries


def test_fig6_sql_queries(run_experiment, scale):
    result = run_experiment(run_sql_queries, scale)
    assert len(result.rows) == 6 * 2 * 4  # queries x biases x methods
    assert np.isfinite([row["avg_percent_difference"] for row in result.rows]).all()

    def error(query, bias, method):
        return result.filter_rows(query=query, bias=bias, method=method)[0][
            "avg_percent_difference"
        ]

    # Paper shape: Q1 (no filter, aggregate over a BN edge) favours hybrid/BB
    # over AQP at 100% bias because AQP misses the non-corner origin states.
    assert error("Q1", 1.0, "Hybrid") <= error("Q1", 1.0, "AQP") + 1e-9
