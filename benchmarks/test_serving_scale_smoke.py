"""Benchmark: sharded multi-process serving tier, small-N smoke run.

Not a paper artefact — this drives the ``serving_scale`` experiment (asyncio
front-end -> micro-batcher -> consistent-hash shard router -> worker
processes) at a reduced query count and asserts the tier's health:

* every worker count stays **bit-identical** to in-process ``execute_batch``
  (the experiment itself raises on any divergence);
* the batched path actually engaged: micro-batch sizes recorded, requests
  served through the latency histogram, both shards took traffic;
* on a multi-core host, 2 workers beat 1 worker by >= 1.5x throughput.

The scaling assertion is **skipped on single-core hosts**: two processes
time-slicing one CPU cannot beat one process, and pretending otherwise
would make the benchmark red on every 1-core CI runner.
"""

import math

import pytest

from repro.experiments.serving_scale import available_cores, run_serving_scale


def test_serving_scale_smoke(run_experiment, scale):
    result = run_experiment(
        run_serving_scale,
        scale,
        worker_counts=(1, 2),
        n_clients=4,
        n_queries=24,
    )
    rows = {row["workers"]: row for row in result.rows}
    assert set(rows) == {0, 1, 2}

    # The sharded rows exist at all => bit-identity held (the experiment
    # raises AssertionError on any divergence from the in-process oracle).
    for n_workers in (1, 2):
        row = rows[n_workers]
        assert row["phase"] == "sharded-async"
        # Batched-path counters are live, not zero: micro-batches formed...
        assert not math.isnan(row["mean_microbatch"])
        assert row["mean_microbatch"] >= 1.0
        # ...and request latency percentiles were recorded.
        assert row["p99_ms"] > 0.0
        assert row["queries_per_second"] > 0.0

    # Both shards took traffic in the 2-worker run.
    split = [int(part) for part in rows[2]["shard_split"].split("/")]
    assert len(split) == 2 and all(part > 0 for part in split)
    assert sum(split) >= result.parameters["n_queries"]

    cores = result.parameters["cores"]
    assert cores == available_cores()
    if cores < 2:
        pytest.skip(
            f"host exposes {cores} CPU core(s): two workers time-slice one "
            "CPU, so the >= 1.5x multi-worker throughput assertion is "
            "meaningless here (it runs on multi-core CI)"
        )
    assert rows[2]["queries_per_second"] >= 1.5 * rows[1]["queries_per_second"], (
        "2 workers should serve >= 1.5x the throughput of 1 worker on a "
        f"{cores}-core host"
    )
