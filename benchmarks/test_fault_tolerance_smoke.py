"""Benchmark: supervised serving under injected worker kills, smoke run.

Not a paper artefact — this drives the ``fault_tolerance`` chaos experiment
(seeded :class:`FaultInjector` schedule killing every shard at least once,
plus a crash mid-refit, while a mixed workload replays through the
:class:`SupervisedWorkerPool`) at a reduced query count and asserts the
recovery story end to end:

* **zero lost or corrupted requests**: the experiment itself raises on any
  answer diverging from the fault-free single-process oracle, and the
  ``mismatches`` column must be 0;
* **recovery actually happened**: crashes were detected, every one of them
  respawned, the mid-refit broadcast was replayed, and the pool ended on a
  coherent generation;
* **recovery was prompt**: median respawn latency stays inside a generous
  per-respawn deadline budget — gated on core count, because respawning
  means re-fitting a model, and N workers re-fitting on one time-sliced
  CPU tells you about the host, not the supervisor.
"""

import math

import pytest

from repro.experiments.fault_tolerance import run_fault_tolerance
from repro.experiments.serving_scale import available_cores

#: Per-respawn wall-clock budget (seconds) asserted on multi-core hosts.
#: A respawn = fork + deterministic re-fit + broadcast-log replay; at SMALL
#: scale that is well under a second warm, so 30s catches only pathologies
#: (a hung replay, a respawn loop) without flaking on slow CI.
RESPAWN_DEADLINE_SECONDS = 30.0

N_WORKERS = 4


def test_fault_tolerance_smoke(run_experiment, scale):
    result = run_experiment(
        run_fault_tolerance,
        scale,
        n_workers=N_WORKERS,
        n_queries=32,
        chunk_size=8,
    )
    rows = {row["phase"]: row for row in result.rows}
    assert set(rows) == {"fault-free-oracle", "chaos-replay"}
    chaos = rows["chaos-replay"]

    # No silent drops, no corruption: every request answered, bit-identical
    # (the experiment raises before returning rows if any answer diverged).
    assert chaos["requests"] == result.parameters["n_queries"]
    assert chaos["mismatches"] == 0
    assert chaos["coherent_generation"] is True

    # The schedule really fired and the supervisor really recovered: every
    # shard died at least once (plus the mid-refit kill), every crash got a
    # respawn, and the logged refit was replayed into at least one respawn.
    assert chaos["crashes"] >= N_WORKERS
    assert chaos["respawns"] == chaos["crashes"]
    assert chaos["retries"] >= 1
    assert chaos["replayed_broadcasts"] >= 1
    assert not math.isnan(chaos["respawn_p50_ms"])
    assert chaos["respawn_p50_ms"] > 0.0

    cores = result.parameters["cores"]
    assert cores == available_cores()
    if cores < 2:
        pytest.skip(
            f"host exposes {cores} CPU core(s): {N_WORKERS} respawning "
            "workers time-slice one CPU, so the respawn-latency deadline "
            "assertion is meaningless here (it runs on multi-core CI)"
        )
    assert chaos["respawn_p50_ms"] <= RESPAWN_DEADLINE_SECONDS * 1e3, (
        f"median respawn took {chaos['respawn_p50_ms']:.0f}ms on a "
        f"{cores}-core host: supervised recovery is not prompt"
    )
