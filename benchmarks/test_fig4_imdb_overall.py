"""Benchmark: regenerate Fig. 4 (IMDB heavy/light hitter accuracy)."""

import numpy as np

from repro.experiments import run_overall_accuracy


def test_fig4_imdb_overall(run_experiment, scale):
    result = run_experiment(run_overall_accuracy, "imdb", scale)
    assert len(result.rows) == 4 * 2 * 4

    def median(sample, hitters, method):
        return result.filter_rows(sample=sample, hitters=hitters, method=method)[0][
            "median"
        ]

    # Paper shape: hybrid is no worse than AQP on the supported biased samples
    # (small tolerance for reduced-scale sampling noise).
    for sample in ("GB", "SR159"):
        assert median(sample, "heavy", "Hybrid") <= median(sample, "heavy", "AQP") + 5.0
    assert np.isfinite([row["median"] for row in result.rows]).all()
