"""Benchmark: the Sec. 5.2 constraint-simplification ablation."""

from repro.experiments import run_simplification_ablation


def test_ablation_simplification(run_experiment, scale):
    result = run_experiment(run_simplification_ablation, scale)
    per_factor = result.filter_rows(solver="per-factor (Sec. 5.2)")[0]
    naive = result.filter_rows(solver="naive joint (Eq. 2)")[0]
    # Paper claim: the simplification is what makes constrained learning
    # tractable — the per-factor solver must be dramatically faster.
    assert per_factor["seconds"] <= naive["seconds"]
    assert per_factor["max_constraint_violation"] <= 0.1
