"""Benchmark: regenerate Fig. 16 (error vs total solver time, IMDB SR159)."""

import numpy as np

from repro.experiments import run_time_accuracy


def test_fig16_time_accuracy(run_experiment, scale):
    result = run_experiment(run_time_accuracy, scale)
    assert len(result.rows) == 7 * 2  # configurations x methods
    assert all(row["solver_seconds"] >= 0.0 for row in result.rows)
    assert np.isfinite([row["avg_percent_difference"] for row in result.rows]).all()

    # Paper shape: the best (lowest-error) BB configuration is at least as
    # accurate as the best IPF configuration.
    best_bb = min(
        row["avg_percent_difference"] for row in result.filter_rows(method="BB")
    )
    best_ipf = min(
        row["avg_percent_difference"] for row in result.filter_rows(method="IPF")
    )
    assert best_bb <= best_ipf + 10.0
