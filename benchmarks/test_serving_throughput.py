"""Benchmark: serving-layer throughput, cache cold vs. warm.

Not a paper artefact — this measures the query-serving subsystem added on
top of the reproduction.  The acceptance bar: the warm-cache path must be at
least 2x faster than the cold path on a repeated workload (in practice it is
orders of magnitude faster, since warm serving is two LRU lookups).
"""

from repro.experiments import run_serving_throughput


def test_serving_throughput(run_experiment, scale):
    result = run_experiment(run_serving_throughput, scale)
    phases = {row["phase"]: row for row in result.rows}
    assert set(phases) == {"unbatched", "batch-cold", "batch-warm"}

    cold = phases["batch-cold"]
    warm = phases["batch-warm"]
    assert cold["result_cache_hits"] == 0
    assert warm["result_cache_hits"] == result.parameters["n_queries"]
    # The headline claim: repeated workloads serve >= 2x faster warm than cold.
    assert warm["speedup_vs_cold"] >= 2.0
    assert warm["queries_per_second"] >= 2.0 * cold["queries_per_second"]
