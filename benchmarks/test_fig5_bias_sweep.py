"""Benchmark: regenerate Fig. 5 (robustness to the amount of bias)."""

from repro.experiments import run_bias_sweep


def test_fig5_bias_sweep(run_experiment, scale):
    result = run_experiment(run_bias_sweep, scale)
    assert len(result.rows) == 6 * 4  # biases x methods

    def error(bias, method):
        return result.filter_rows(bias=bias, method=method)[0]["avg_percent_difference"]

    # Paper shape: hybrid mitigates the support mismatch at 100% bias, beating
    # both pure reweighting approaches there.  (The paper's sharp IPF
    # improvement as bias decreases needs the full-size sample; at the reduced
    # scale missing-tuple errors dominate both AQP and IPF, so that contrast
    # is reported but not asserted.)
    assert error(1.0, "Hybrid") <= error(1.0, "IPF")
    assert error(1.0, "Hybrid") < error(1.0, "AQP")
