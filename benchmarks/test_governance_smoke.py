"""Benchmark: resource governance under cache pressure + overload, smoke run.

Not a paper artefact — this drives the ``governance`` chaos experiment (a
cache-hostile distinct-query replay under a quarter-of-footprint memory
budget, then a mixed-priority coroutine swarm against a slow shard behind
priority-aware admission control) and asserts the governance story end to
end:

* **eviction never costs bits**: both phases raise inside the experiment on
  any answer diverging from the ungoverned oracle, and the ``mismatches``
  columns must be 0;
* **the budget held at every sample point**: the experiment raises if any
  post-chunk byte sample exceeded the budget, and the reported high water
  stays under it here too;
* **pressure actually happened**: at least one eviction, flush, or cache
  admission rejection fired — otherwise the budget exerted no pressure and
  the run proves nothing;
* **shedding is typed and priority-ordered**: shed requests carried typed
  errors (asserted inside the experiment — never a raw asyncio timeout),
  background work shed first, and completed interactive requests met their
  deadline at p99 — gated on core count, because two worker processes
  time-slicing one CPU measures the host, not the admission controller.
"""

import math

import pytest

from repro.experiments.governance import run_governance
from repro.experiments.serving_scale import available_cores

N_WORKERS = 2


def test_governance_smoke(run_experiment, scale):
    result = run_experiment(
        run_governance,
        scale,
        n_workers=N_WORKERS,
        chunk_size=16,
    )
    rows = {row["phase"]: row for row in result.rows}
    assert set(rows) == {
        "ungoverned-oracle",
        "cache-pressure",
        "overload-admission",
    }
    pressure = rows["cache-pressure"]
    overload = rows["overload-admission"]

    # Eviction never costs bits: both phases answered every request exactly
    # == the ungoverned oracle (the experiment raises before returning rows
    # if any answer diverged or any byte sample exceeded the budget).
    assert pressure["requests"] == result.parameters["n_queries"]
    assert pressure["mismatches"] == 0
    assert overload["mismatches"] == 0

    # The budget squeezed (quarter of the ungoverned footprint) and held.
    budget = result.parameters["budget_bytes"]
    assert budget < result.parameters["ungoverned_bytes"]
    assert pressure["cache_bytes_max"] <= budget
    assert (
        pressure["evictions"] + pressure["flushes"] + pressure["cache_rejections"]
        >= 1
    )

    # Admission really arbitrated: some work admitted, some shed, and the
    # lowest priority class bore the shedding.
    assert overload["admitted"] >= 1
    assert overload["rejected"] >= 1
    assert overload["shed_background"] >= 1
    assert overload["rejected"] >= overload["shed_background"]

    cores = result.parameters["cores"]
    assert cores == available_cores()
    if cores < 2:
        pytest.skip(
            f"host exposes {cores} CPU core(s): {N_WORKERS} worker processes "
            "time-slice one CPU, so the interactive-latency assertion "
            "is meaningless here (it runs on multi-core CI)"
        )
    assert not math.isnan(overload["interactive_p99_ms"])
    assert (
        overload["interactive_p99_ms"]
        <= result.parameters["interactive_deadline"] * 1e3
    ), (
        f"interactive p99 {overload['interactive_p99_ms']:.0f}ms missed the "
        "deadline on a multi-core host: admission did not protect the "
        "highest priority class"
    )
