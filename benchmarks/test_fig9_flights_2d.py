"""Benchmark: regenerate Fig. 9 (Flights error vs number of 2D aggregates)."""

from repro.experiments import run_nd_sweep


def test_fig9_flights_2d(run_experiment, scale):
    result = run_experiment(run_nd_sweep, "flights", 2, scale)
    assert len(result.rows) == 2 * 5 * 4  # samples x budgets x methods

    def error(sample, budget, method):
        return result.filter_rows(sample=sample, n_nd_aggregates=budget, method=method)[0][
            "avg_percent_difference"
        ]

    # Paper shape: BB improves (or at least does not degrade) as 2D aggregates
    # are added on the SCorners sample (small tolerance for noise).
    assert error("SCorners", 4, "BB") <= error("SCorners", 0, "BB") + 5.0
