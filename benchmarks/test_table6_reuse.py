"""Benchmark: regenerate Table 6 (Themis vs the reuse baseline of [33])."""

import numpy as np

from repro.experiments import run_reuse_comparison


def test_table6_reuse(run_experiment, scale):
    result = run_experiment(run_reuse_comparison, scale)
    assert len(result.rows) == 6 * 2  # biases x attribute pairs
    assert np.isfinite([row["hybrid_error"] for row in result.rows]).all()

    # Paper shape: on the pair the aggregate does not cover (DT-DE), Themis's
    # error is no worse than the baseline's (which degenerates to uniform
    # scaling) at high bias.
    row = result.filter_rows(pair="distance-dest_state", bias=1.0)[0]
    assert row["hybrid_error"] <= row["reuse_error"] + 10.0
