"""Benchmark: plan-IR columnar kernels vs. per-tuple evaluation, cold vs. warm.

Not a paper artefact — this measures the unified logical-plan IR added on top
of the reproduction.  Two acceptance bars:

* a **cold** multi-predicate scalar/GROUP BY batch (fresh mask cache) must
  serve at least 2x faster than the per-tuple reference engine;
* the same batch **warm** (every predicate mask cached by
  ``(generation, predicate)``) must serve at least 2x faster than cold.

Cold and warm answers are bit-identical (asserted inside the experiment).
"""

from repro.experiments import run_plan_ir


def test_plan_ir_throughput(run_experiment, scale):
    result = run_experiment(run_plan_ir, scale)
    phases = {row["phase"]: row for row in result.rows}
    assert set(phases) == {"per-tuple", "ir-cold", "ir-warm"}

    per_tuple = phases["per-tuple"]
    cold = phases["ir-cold"]
    warm = phases["ir-warm"]

    # Cold pays one mask per distinct predicate (plus conjunctions); warm
    # pays none at all.
    assert cold["mask_cache_misses"] > 0
    assert warm["mask_cache_misses"] == 0

    # The headline claims: columnar kernels beat per-tuple evaluation by
    # >= 2x even cold, and a warm mask cache doubles throughput again.
    assert cold["speedup_vs_per_tuple"] >= 2.0
    assert cold["queries_per_second"] >= 2.0 * per_tuple["queries_per_second"]
    assert warm["queries_per_second"] >= 2.0 * cold["queries_per_second"]
