"""Benchmark: regenerate Table 1 (the motivating example)."""

from repro.experiments import run_table1


def test_table1_motivating(run_experiment, scale):
    result = run_experiment(run_table1, scale)
    assert len(result.rows) == 4
    # Themis answers every state, including ones missing from the sample.
    assert all(row["themis"] >= 0 for row in result.rows)
    # Themis is at least as accurate as AQP on the in-sample heavy states.
    ca = result.filter_rows(state="CA")[0]
    assert ca["themis_error"] <= ca["aqp_error"]
