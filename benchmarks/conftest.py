"""Shared benchmark fixtures.

Each benchmark runs one paper experiment exactly once (``pedantic`` with a
single round): the interesting measurement is the end-to-end wall-clock of
regenerating a figure/table, not micro-benchmark statistics.  Every benchmark
also prints the experiment's rendered table so ``pytest benchmarks/
--benchmark-only -s`` doubles as the reproduction report.
"""

from __future__ import annotations

import pytest

from repro.experiments import SMALL_SCALE, ExperimentResult


@pytest.fixture(scope="session")
def scale():
    """The experiment scale used by all benchmarks."""
    return SMALL_SCALE


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment function once under pytest-benchmark and print it."""

    def _run(function, *args, **kwargs) -> ExperimentResult:
        result = benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )
        if isinstance(result, ExperimentResult):
            print()
            print(result.render())
        return result

    return _run
