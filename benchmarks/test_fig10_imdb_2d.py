"""Benchmark: regenerate Fig. 10 (IMDB error vs number of 2D aggregates)."""

import numpy as np

from repro.experiments import run_nd_sweep


def test_fig10_imdb_2d(run_experiment, scale):
    result = run_experiment(run_nd_sweep, "imdb", 2, scale)
    assert len(result.rows) == 2 * 5 * 4
    assert np.isfinite([row["avg_percent_difference"] for row in result.rows]).all()
