"""Benchmark: join-aware batch optimizer vs. per-plan join execution.

Not a paper artefact — this measures the join-side rewrites added on top of
the reproduction's batch-aware plan optimizer.  Acceptance bars:

* a **cold** side-sharing join batch served through the optimized schedule
  must be at least 2x faster than the per-plan reference loop
  (``optimize=False``);
* a **warm** repeat of the batch must answer every scheduled side from the
  cross-batch join-side cache (counter-proven; no timing bar — the warm
  delta is too small to assert robustly on a noisy shared runner);
* answers must be bit-identical across all three phases (asserted inside the
  experiment with exact ``==``);
* the counters must prove the join rewrites fired: sides fused, equivalent
  join plans deduped, and warm-batch join-side cache hits.
"""

from repro.experiments import run_join_fusion


def test_join_fusion_throughput(run_experiment, scale):
    result = run_experiment(run_join_fusion, scale)
    phases = {row["phase"]: row for row in result.rows}
    assert set(phases) == {"per-plan", "optimized", "warm"}

    per_plan = phases["per-plan"]
    optimized = phases["optimized"]
    warm = phases["warm"]

    # Every join rewrite fired: duplicate and padded/reordered join plans
    # collapsed, shared sides computed once per batch through the fused
    # stacked scatter-add, and the warm batch answered every scheduled side
    # from the cross-batch cache.  (Bit-identity between the phases is
    # asserted inside the experiment itself, with exact equality.)
    assert optimized["plans_deduped"] > 0
    assert optimized["join_sides_fused"] > 0
    assert optimized["join_side_cache_hits"] == 0  # cold: nothing cached yet
    assert warm["join_side_cache_hits"] > 0

    # The headline claim: the join-aware optimizer at least doubles
    # cold-batch throughput on the side-sharing workload.  (The warm phase
    # is proven by its cache-hit counter above, not a timing bar — its
    # delta over cold-optimized is too small to assert on noisy runners.)
    assert optimized["speedup"] >= 2.0
    assert optimized["queries_per_second"] >= 2.0 * per_plan["queries_per_second"]
