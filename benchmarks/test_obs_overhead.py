"""Benchmark: the observability layer's overhead bounds.

Two acceptance bars over the PR-3 plan-IR workload (multi-predicate scalar
and GROUP BY queries on the columnar engine):

* **disabled** — with no tracer attached, the instrumentation the hot path
  pays is exactly the no-op hooks (``NULL_TRACER.span`` context cycles and
  ``tracer.enabled`` checks).  We count how many spans an enabled run of the
  workload creates, time that many null-hook cycles, and require the total
  to stay under **3%** of the untraced workload's wall-clock;
* **enabled** — an A/B of the same warm workload untraced vs. under a live
  :class:`~repro.obs.Tracer` must stay under **15%** slowdown.

Both sides use best-of-N timing so a scheduler hiccup on a shared CI runner
cannot fake a regression.
"""

from __future__ import annotations

import time

from repro.experiments import SMALL_SCALE
from repro.experiments.plan_ir_throughput import plan_ir_relation, plan_ir_workload
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sql.engine import WeightedQueryEngine


def _best_of(rounds: int, function) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _warm_workload():
    """A warmed columnar engine plus the plan-IR query mix it will serve."""
    relation = plan_ir_relation(SMALL_SCALE)
    queries = plan_ir_workload(relation, 24, seed=SMALL_SCALE.seed + 29)
    engine = WeightedQueryEngine(relation)
    for query in queries:  # warm masks/group tables: time steady-state serving
        engine.execute(query)
    return engine, queries


def test_disabled_tracer_overhead_under_3_percent():
    engine, queries = _warm_workload()

    def untraced():
        for query in queries:
            engine.execute(query)

    untraced_seconds = _best_of(5, untraced)

    # Count every span a fully traced run of this workload would create:
    # that is the number of no-op hook cycles the disabled path pays.
    tracer = Tracer()
    for query in queries:
        engine.execute(query, tracer=tracer)
    n_spans = sum(sum(1 for _ in root.walk()) for root in tracer.roots)
    assert n_spans >= len(queries)

    def null_hooks():
        span = NULL_TRACER.span
        for _ in range(n_spans):
            with span("x", attr=1):
                pass

    null_seconds = _best_of(5, null_hooks)
    overhead = null_seconds / untraced_seconds
    print(
        f"\ndisabled-tracer overhead: {n_spans} null hooks = "
        f"{1e6 * null_seconds:.1f}us over {1e3 * untraced_seconds:.2f}ms "
        f"({100 * overhead:.3f}%)"
    )
    assert overhead < 0.03


def test_enabled_tracer_overhead_under_15_percent():
    engine, queries = _warm_workload()

    def untraced():
        for query in queries:
            engine.execute(query)

    def traced():
        tracer = Tracer()
        for query in queries:
            engine.execute(query, tracer=tracer)

    untraced_seconds = _best_of(5, untraced)
    traced_seconds = _best_of(5, traced)
    overhead = traced_seconds / untraced_seconds - 1.0
    print(
        f"\nenabled-tracer overhead: {1e3 * traced_seconds:.2f}ms vs "
        f"{1e3 * untraced_seconds:.2f}ms ({100 * overhead:.2f}%)"
    )
    assert overhead < 0.15
