"""Benchmark: fused analytic (table-shaped) batches vs. per-plan, both cold.

Not a paper artefact — this measures the analytic SQL surface (multi-
aggregate SELECT lists, HAVING, window functions, ORDER BY/LIMIT) on the
batch optimizer it lowers onto.  Acceptance bars:

* a **cold** dashboard batch of table-shaped variants served through the
  optimized schedule must be at least 2x faster than the per-plan
  reference loop (``optimize=False``);
* ordered tables must be bit-identical (asserted inside the experiment
  with exact ``==`` — row order included);
* the counters must prove every rewrite fired on table plans too: exact
  duplicates deduped, multi-aggregate SELECT lists fused into shared
  scatter-add passes, masks shared across families, and window sort
  permutations shared across plans with the same window descriptor.
"""

from repro.experiments import run_sql_surface


def test_sql_surface_throughput(run_experiment, scale):
    result = run_experiment(run_sql_surface, scale)
    phases = {row["phase"]: row for row in result.rows}
    assert set(phases) == {"per-plan", "optimized"}

    per_plan = phases["per-plan"]
    optimized = phases["optimized"]

    # Every rewrite fired on analytic plans: duplicates collapsed,
    # multi-aggregate table plans fused into their families' scatter-add
    # passes, masks were reused across families, and same-descriptor
    # windows shared one argsort.  (Bit-identity between the phases is
    # asserted inside the experiment itself, with exact equality.)
    assert optimized["plans_deduped"] > 0
    assert optimized["groupby_fusions"] > 0
    assert optimized["masks_shared"] > 0
    assert optimized["window_sorts_shared"] > 0

    # The headline claim: the analytic surface keeps the optimizer's
    # cold-batch throughput guarantee — at least 2x over per-plan.
    assert optimized["speedup"] >= 2.0
    assert optimized["queries_per_second"] >= 2.0 * per_plan["queries_per_second"]
