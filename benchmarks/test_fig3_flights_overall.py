"""Benchmark: regenerate Fig. 3 (Flights heavy/light hitter accuracy)."""

import numpy as np

from repro.experiments import run_overall_accuracy


def test_fig3_flights_overall(run_experiment, scale):
    result = run_experiment(run_overall_accuracy, "flights", scale)
    assert len(result.rows) == 4 * 2 * 4  # samples x hitters x methods

    def median(sample, hitters, method):
        return result.filter_rows(sample=sample, hitters=hitters, method=method)[0][
            "median"
        ]

    # Paper shape: hybrid <= AQP on heavy hitters for the canonical supported
    # biased sample (the June contrast needs the full-size dataset to rise
    # above sampling noise, so it is reported but not asserted).
    assert median("SCorners", "heavy", "Hybrid") <= median("SCorners", "heavy", "AQP")
    # On the unsupported Corners sample the BN component should not be worse
    # than plain IPF on light hitters (the support-mismatch claim).
    assert median("Corners", "light", "Hybrid") <= median("Corners", "light", "IPF") + 1e-9
    assert np.isfinite([row["median"] for row in result.rows]).all()
