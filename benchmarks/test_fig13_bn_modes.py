"""Benchmark: regenerate Fig. 13 (the five BN learning modes)."""

import numpy as np

from repro.experiments import run_bn_modes


def test_fig13_bn_modes(run_experiment, scale):
    result = run_experiment(run_bn_modes, scale)
    assert len(result.rows) == 5 * 2 * 5  # budgets x hitters x modes
    assert np.isfinite([row["avg_percent_difference"] for row in result.rows]).all()

    def error(budget, hitters, mode):
        return result.filter_rows(
            n_2d_aggregates=budget, hitters=hitters, mode=mode
        )[0]["avg_percent_difference"]

    # Paper shape: aggregate-constrained parameter learning (SB/BB) beats the
    # sample-only SS mode on heavy hitters once 2D aggregates are available.
    assert min(error(4, "heavy", "BB"), error(4, "heavy", "SB")) <= error(4, "heavy", "SS") + 1e-9
