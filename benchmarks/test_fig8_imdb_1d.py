"""Benchmark: regenerate Fig. 8 (IMDB error vs number of 1D aggregates)."""

import numpy as np

from repro.experiments import run_1d_sweep


def test_fig8_imdb_1d(run_experiment, scale):
    result = run_experiment(run_1d_sweep, "imdb", scale)
    assert len(result.rows) == 2 * 2 * 5 * 4
    assert np.isfinite([row["avg_percent_difference"] for row in result.rows]).all()
