"""Benchmark: regenerate Fig. 7 (Flights error vs number of 1D aggregates)."""

from repro.experiments import run_1d_sweep


def test_fig7_flights_1d(run_experiment, scale):
    result = run_experiment(run_1d_sweep, "flights", scale)
    assert len(result.rows) == 2 * 2 * 5 * 4  # samples x orders x budgets x methods

    def error(sample, order, budget, method):
        return result.filter_rows(
            sample=sample, order=order, n_1d_aggregates=budget, method=method
        )[0]["avg_percent_difference"]

    # Paper shape: for SCorners, once the bias-causing origin_state aggregate
    # is available (all five 1D aggregates) IPF is at least as good as with a
    # single, unrelated aggregate (small tolerance for reduced-scale noise).
    assert error("SCorners", "A", 5, "IPF") <= error("SCorners", "A", 1, "IPF") + 10.0
