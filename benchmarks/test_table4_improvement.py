"""Benchmark: regenerate Table 4 (percent improvement of hybrid over AQP)."""

from repro.experiments import median_improvement_heavy, run_table4_improvement


def test_table4_improvement(run_experiment, scale):
    result = run_experiment(run_table4_improvement, scale)
    assert len(result.rows) == 8  # 4 samples x heavy/light
    # Headline claim: a clear positive median-error improvement on heavy hitters.
    assert median_improvement_heavy(result) > 0
