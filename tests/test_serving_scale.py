"""The scale tier: sharding, worker pool, micro-batching, backpressure.

The load-bearing assertions are exact ``==`` bit-identity between the
sharded multi-process path and in-process ``execute_batch`` — over a seeded
``MixedQueryWorkload`` sweep, through the asyncio front-end, through the
socket server, and **across a mid-stream refit with warm worker caches**
(the cross-process cache-coherence guarantee, extending the
``tests/test_sql_differential.py`` pattern through the sharded path).
Backpressure is typed: queue-full and latency-budget misses raise
``ServingOverloadError`` carrying the queue depth / lagging shard.
"""

from __future__ import annotations

import asyncio
import json
import pickle
import time

import pytest

from repro.aggregates import AggregateQuery
from repro.exceptions import ServingOverloadError, ThemisError
from repro.obs import names
from repro.obs.metrics import MetricsRegistry
from repro.plan import PlanCompiler
from repro.query.workload import MixedQueryWorkload
from repro.serving.scale import (
    AsyncServingFrontend,
    MicroBatcher,
    ShardRouter,
    ShardedWorkerPool,
    WorkerSpec,
    serve_async,
)
from repro.serving.scale.shard import stable_plan_hash

from worlds import build_correlated_population, build_fitted_themis

SWEEP_SEED = 421


@pytest.fixture(scope="module")
def themis():
    return build_fitted_themis()


@pytest.fixture(scope="module")
def sweep_queries(themis):
    workload = MixedQueryWorkload(themis.sample, seed=SWEEP_SEED)
    entries = workload.generate(n_point=6, n_scalar=6, n_group_by=6, n_analytic=6)
    # Mix ASTs and SQL text: the pool compiles both, and entry.sql compiles
    # to the same canonical key as entry.query, so both shard identically.
    return [
        entry.sql if index % 3 == 0 else entry.query
        for index, entry in enumerate(entries)
    ]


@pytest.fixture(scope="module")
def expected(sweep_queries):
    oracle = build_fitted_themis()
    return oracle.execute_batch(sweep_queries).results()


# ---------------------------------------------------------------------------
# Shard router
# ---------------------------------------------------------------------------
class TestShardRouter:
    def test_routing_is_deterministic_across_instances(self, themis):
        compiler = PlanCompiler(themis.sample.schema)
        workload = MixedQueryWorkload(themis.sample, seed=7)
        keys = [
            compiler.compile(entry.query).key
            for entry in workload.generate(n_point=8, n_scalar=8, n_group_by=8)
        ]
        first, second = ShardRouter(4), ShardRouter(4)
        assert [first.shard_for(k) for k in keys] == [
            second.shard_for(k) for k in keys
        ]

    def test_stable_hash_is_pinned(self):
        # Process-stability tripwire: blake2b over the canonical encoding
        # must never depend on PYTHONHASHSEED or the process.  If this
        # moves, every cross-version shard assignment moves with it.
        assert stable_plan_hash(("point", (("A", 1),))) == 0x10DB667397168BB3

    def test_consistent_resize_moves_few_keys(self):
        hashes = [stable_plan_hash(("point", (("A", i), ("B", i % 3)))) for i in range(400)]
        before = ShardRouter(4)
        after = ShardRouter(5)
        moved = sum(
            1
            for h in hashes
            if before.shard_for_hash(h) != after.shard_for_hash(h)
        )
        # Consistent hashing moves ~1/5 of the space; full rehashing would
        # move ~4/5.  Allow generous slack over the expectation.
        assert moved < len(hashes) // 2

    def test_all_shards_reachable(self):
        router = ShardRouter(4)
        owners = {
            router.shard_for_hash(stable_plan_hash(("point", (("A", i),))))
            for i in range(200)
        }
        assert owners == {0, 1, 2, 3}

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


# ---------------------------------------------------------------------------
# Worker spec
# ---------------------------------------------------------------------------
class TestWorkerSpec:
    def test_spec_pickles_and_rebuilds_deterministically(self, themis):
        spec = WorkerSpec.from_themis(themis)
        revived = pickle.loads(pickle.dumps(spec))
        first = revived.build_themis()
        second = revived.build_themis()
        statement = "SELECT A, COUNT(*) FROM R WHERE B <= 1 GROUP BY A"
        assert first.query(statement) == second.query(statement)
        assert first.query(statement) == themis.query(statement)


# ---------------------------------------------------------------------------
# Sharded pool: bit-identity and coherence
# ---------------------------------------------------------------------------
class TestShardedWorkerPool:
    def test_batch_is_bit_identical_to_single_process(
        self, themis, sweep_queries, expected
    ):
        with ShardedWorkerPool(themis, n_workers=2) as pool:
            cold = pool.execute_batch(sweep_queries)
            warm = pool.execute_batch(sweep_queries)
        assert cold == expected, f"cold sharded sweep diverged (seed {SWEEP_SEED})"
        assert warm == expected, f"warm sharded sweep diverged (seed {SWEEP_SEED})"

    def test_shard_occupancy_and_batch_counters(self, themis, sweep_queries):
        with ShardedWorkerPool(themis, n_workers=2) as pool:
            pool.execute_batch(sweep_queries)
            snapshot = pool.metrics.snapshot()
        occupancy = {
            name: value
            for name, value in snapshot["counters"].items()
            if name.startswith(names.SCALE_SHARD_PREFIX)
        }
        assert sum(occupancy.values()) == len(sweep_queries)
        assert len(occupancy) == 2, f"one shard got everything: {occupancy}"
        assert snapshot["counters"][names.SCALE_POOL_BATCHES] == 1
        assert snapshot["gauges"][names.SCALE_SHARDS] == 2
        assert snapshot["histograms"][names.SCALE_DISPATCH_SECONDS]["count"] == 1
        # worker optimizer counters folded into the parent registry
        assert snapshot["counters"][names.optimizer_counter("batches")] >= 1

    def test_refit_mid_stream_with_warm_caches_matches_fresh_session(
        self, sweep_queries
    ):
        """The cross-process cache-coherence guarantee.

        Warm every worker's result cache, then make refit observable (a new
        aggregate changes the reweighting, as in
        ``test_differential_survives_refit``), broadcast it, and assert the
        post-refit sharded answers are bit-identical to a **fresh**
        single-process session over the same final inputs.
        """
        population = build_correlated_population()
        new_aggregate = AggregateQuery.from_relation(population, ["A", "C"])

        # Own facade: pool.add_aggregate mutates the parent too, and the
        # module-scoped fixture must stay pristine for later tests.
        with ShardedWorkerPool(build_fitted_themis(), n_workers=2) as pool:
            pre = pool.execute_batch(sweep_queries)
            assert pool.execute_batch(sweep_queries) == pre  # caches warm
            pool.add_aggregate(new_aggregate)
            pool.refit()
            post = pool.execute_batch(sweep_queries)
            post_again = pool.execute_batch(sweep_queries)

        oracle = build_fitted_themis()
        oracle.add_aggregate(new_aggregate)
        oracle.refit()
        fresh = oracle.execute_batch(sweep_queries).results()
        assert post == fresh, (
            f"post-refit sharded answers diverged from a fresh single-process "
            f"session (seed {SWEEP_SEED})"
        )
        assert post_again == fresh
        assert post != pre, "refit changed no answer: stale caches would hide"

    def test_dispatch_timeout_raises_overload_with_shard_id(self, themis):
        statement = "SELECT A, COUNT(*) FROM R GROUP BY A"
        with ShardedWorkerPool(themis, n_workers=1) as pool:
            with pytest.raises(ServingOverloadError) as excinfo:
                pool.execute_batch([statement], timeout=1e-6)
            assert excinfo.value.shard_id == 0
            # The worker's eventual late reply is discarded by sequence
            # number: the pool keeps serving correct answers afterwards.
            time.sleep(0.5)
            oracle = build_fitted_themis()
            assert pool.execute_batch([statement]) == [oracle.query(statement)]

    def test_closed_pool_rejects_work(self, themis):
        pool = ShardedWorkerPool(themis, n_workers=1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ThemisError, match="closed"):
            pool.execute_batch(["SELECT COUNT(*) FROM R WHERE A = 0"])


# ---------------------------------------------------------------------------
# Micro-batcher backpressure (unit tests over a stub pool)
# ---------------------------------------------------------------------------
class _StubPool:
    """Duck-typed pool: echoes query indices, optionally slowly."""

    def __init__(self, delay: float = 0.0):
        self.metrics = MetricsRegistry()
        self.delay = delay
        self.batches: list[list] = []

    def execute_batch(self, queries, timeout=None):
        if self.delay:
            time.sleep(self.delay)
        self.batches.append(list(queries))
        return [f"answer:{query}" for query in queries]


class TestMicroBatcherBackpressure:
    def test_queue_full_raises_typed_overload(self):
        async def scenario():
            batcher = MicroBatcher(
                _StubPool(delay=0.2), latency_budget=10.0, max_queue=2
            )
            await batcher.start()
            first = asyncio.ensure_future(batcher.submit("q0"))
            second = asyncio.ensure_future(batcher.submit("q1"))
            await asyncio.sleep(0)  # let both enqueue
            with pytest.raises(ServingOverloadError) as excinfo:
                await batcher.submit("q2")
            assert excinfo.value.queue_depth == 2
            assert "queue_depth=2" in str(excinfo.value)
            assert batcher.metrics.value(names.SCALE_OVERLOADS) == 1
            # The two accepted submissions still complete on shutdown.
            await batcher.stop()
            assert await first == "answer:q0"
            assert await second == "answer:q1"

        asyncio.run(scenario())

    def test_dispatch_timeout_fails_futures_with_overload(self):
        async def scenario():
            batcher = MicroBatcher(
                _StubPool(delay=0.5),
                latency_budget=0.0,
                dispatch_timeout=0.01,
            )
            await batcher.start()
            with pytest.raises(ServingOverloadError):
                await batcher.submit("slow-query")
            await batcher.stop()
            assert batcher.metrics.value(names.SCALE_OVERLOADS) >= 1

        asyncio.run(scenario())

    def test_arrivals_within_budget_share_one_batch(self):
        async def scenario():
            pool = _StubPool()
            batcher = MicroBatcher(pool, latency_budget=0.05, max_batch_size=8)
            await batcher.start()
            answers = await asyncio.gather(
                *(batcher.submit(f"q{i}") for i in range(6))
            )
            await batcher.stop()
            assert answers == [f"answer:q{i}" for i in range(6)]
            assert len(pool.batches) == 1, pool.batches  # all fused
            sizes = batcher.metrics.snapshot()["histograms"][names.MICROBATCH_SIZE]
            assert sizes["count"] == 1 and sizes["max"] == 6

        asyncio.run(scenario())

    def test_zero_budget_still_serves(self):
        async def scenario():
            pool = _StubPool()
            batcher = MicroBatcher(pool, latency_budget=0.0)
            await batcher.start()
            assert await batcher.submit("q") == "answer:q"
            await batcher.stop()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Asyncio front-end and socket server
# ---------------------------------------------------------------------------
class TestAsyncFrontend:
    def test_concurrent_clients_bit_identical(self, themis, sweep_queries, expected):
        async def scenario():
            async with AsyncServingFrontend(
                themis, n_workers=2, latency_budget=0.01
            ) as frontend:
                answers = await asyncio.gather(
                    *(frontend.query(q) for q in sweep_queries)
                )
                snapshot = frontend.statistics()
            assert list(answers) == expected, (
                f"async sharded answers diverged (seed {SWEEP_SEED})"
            )
            assert snapshot["counters"][names.SCALE_REQUESTS] == len(sweep_queries)
            assert snapshot["histograms"][names.MICROBATCH_SIZE]["count"] >= 1
            assert (
                snapshot["histograms"][names.SCALE_REQUEST_SECONDS]["count"]
                == len(sweep_queries)
            )

        asyncio.run(scenario())

    def test_socket_server_round_trip(self, themis):
        statement = "SELECT A, COUNT(*) FROM R WHERE B <= 1 GROUP BY A"
        scalar = "SELECT COUNT(*) FROM R WHERE A = 1 AND B = 0"
        oracle = build_fitted_themis()

        async def scenario():
            async with AsyncServingFrontend(
                themis, n_workers=1, latency_budget=0.005
            ) as frontend:
                server = await serve_async(frontend, port=0)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                for request_id, sql in ((1, statement), (2, scalar), (3, "syntax (")):
                    writer.write(
                        json.dumps({"id": request_id, "sql": sql}).encode() + b"\n"
                    )
                await writer.drain()
                responses = [
                    json.loads(await reader.readline()) for _ in range(3)
                ]
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()
            return responses

        groups, scalar_resp, bad = asyncio.run(scenario())
        assert groups["ok"] and groups["id"] == 1 and groups["kind"] == "groups"
        expected_groups = oracle.query(statement)
        assert groups["groups"] == sorted(
            [list(group), value] for group, value in expected_groups
        )
        assert scalar_resp["ok"] and scalar_resp["kind"] == "scalar"
        assert scalar_resp["value"] == oracle.query(scalar)
        assert not bad["ok"] and "error" in bad


# ---------------------------------------------------------------------------
# Workload seed contract
# ---------------------------------------------------------------------------
class TestWorkloadSeedContract:
    def test_same_seed_same_workload(self, themis):
        first = MixedQueryWorkload(themis.sample, seed=99).generate(
            n_point=5, n_scalar=5, n_group_by=5, n_analytic=5
        )
        second = MixedQueryWorkload(themis.sample, seed=99).generate(
            n_point=5, n_scalar=5, n_group_by=5, n_analytic=5
        )
        assert [e.sql for e in first] == [e.sql for e in second]
        assert [e.query for e in first] == [e.query for e in second]

    def test_different_seeds_differ(self, themis):
        first = MixedQueryWorkload(themis.sample, seed=1).generate(n_point=8)
        second = MixedQueryWorkload(themis.sample, seed=2).generate(n_point=8)
        assert [e.sql for e in first] != [e.sql for e in second]

    def test_instances_do_not_share_state(self, themis):
        solo = MixedQueryWorkload(themis.sample, seed=5)
        paired = MixedQueryWorkload(themis.sample, seed=5)
        interloper = MixedQueryWorkload(themis.sample, seed=6)
        a = solo.generate(n_point=4)
        interloper.generate(n_point=4)  # must not advance `paired`
        b = paired.generate(n_point=4)
        assert [e.sql for e in a] == [e.sql for e in b]
