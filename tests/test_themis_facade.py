"""Tests for the Themis facade: ingestion, fitting, and open-world querying."""

from __future__ import annotations

import pytest

from repro.aggregates import AggregateQuery, AggregateSet
from repro.core import Themis, ThemisConfig
from repro.exceptions import QueryError, ThemisError
from repro.metrics import percent_difference
from repro.query import GroupByQuery
from repro.schema import Relation


@pytest.fixture
def fitted_themis(biased_correlated_sample, correlated_aggregates):
    themis = Themis(
        ThemisConfig(
            seed=1,
            ipf_max_iterations=60,
            n_generated_samples=4,
            generated_sample_size=600,
        )
    )
    themis.load_sample(biased_correlated_sample)
    themis.add_aggregates(correlated_aggregates)
    themis.fit()
    return themis


class TestIngestion:
    def test_empty_sample_rejected(self, correlated_population):
        themis = Themis()
        with pytest.raises(ThemisError):
            themis.load_sample(Relation.empty(correlated_population.schema))

    def test_fit_without_sample_rejected(self):
        with pytest.raises(ThemisError):
            Themis().fit()

    def test_fit_without_aggregates_rejected(self, biased_correlated_sample):
        themis = Themis()
        themis.load_sample(biased_correlated_sample)
        with pytest.raises(ThemisError):
            themis.fit()

    def test_unknown_config_override_rejected(self):
        with pytest.raises(ThemisError):
            Themis(bogus_option=1)

    def test_config_overrides_apply(self):
        themis = Themis(reweighter="linreg", bn_mode="SB")
        assert themis.config.reweighter == "linreg"
        assert themis.config.bn_mode == "SB"

    def test_adding_aggregate_invalidates_model(self, fitted_themis, correlated_population):
        assert fitted_themis.is_fitted
        fitted_themis.add_aggregate(
            AggregateQuery.from_relation(correlated_population, ["C"])
        )
        assert not fitted_themis.is_fitted


class TestFitting:
    def test_model_summary_contents(self, fitted_themis):
        summary = fitted_themis.model.summary()
        assert summary["reweighter"] == "IPF"
        assert summary["bn_mode"] == "BB"
        assert summary["population_size"] == 4000.0
        assert "reweighting" in summary["timings"]

    def test_weighted_sample_total_close_to_population(self, fitted_themis):
        total = fitted_themis.model.weighted_sample.total_weight()
        assert total == pytest.approx(4000.0, rel=0.15)

    def test_evaluator_lookup(self, fitted_themis):
        model = fitted_themis.model
        assert model.evaluator("hybrid") is model.hybrid_evaluator
        assert model.evaluator("sample") is model.sample_evaluator
        assert model.evaluator("bn") is model.bayes_net_evaluator
        with pytest.raises(KeyError):
            model.evaluator("bogus")

    @pytest.mark.parametrize("reweighter", ["uniform", "linreg", "ipf"])
    def test_all_reweighters_fit(
        self, reweighter, biased_correlated_sample, correlated_aggregates
    ):
        themis = Themis(reweighter=reweighter, n_generated_samples=3, generated_sample_size=300)
        themis.load_sample(biased_correlated_sample)
        themis.add_aggregates(correlated_aggregates)
        model = themis.fit()
        assert model.weighted_sample.has_weights

    def test_unknown_reweighter_rejected(self, biased_correlated_sample, correlated_aggregates):
        themis = Themis(reweighter="bogus")
        themis.load_sample(biased_correlated_sample)
        themis.add_aggregates(correlated_aggregates)
        with pytest.raises(ThemisError):
            themis.fit()

    def test_aggregate_budget_prunes(self, biased_correlated_sample, correlated_aggregates):
        themis = Themis(aggregate_budget=1, n_generated_samples=3, generated_sample_size=300)
        themis.load_sample(biased_correlated_sample)
        themis.add_aggregates(correlated_aggregates)
        model = themis.fit()
        # One 1D aggregate is always kept plus one pruned 2D aggregate.
        assert len(model.aggregates) == 2


class TestQuerying:
    def test_point_query_accuracy(self, fitted_themis, correlated_population):
        truth = correlated_population.count({"A": 2, "B": 2})
        estimate = fitted_themis.point({"A": 2, "B": 2})
        assert percent_difference(truth, estimate) < 60

    def test_group_by_covers_population_groups(self, fitted_themis, correlated_population):
        result = fitted_themis.group_by(GroupByQuery(group_by=("A",)))
        assert result.groups() == correlated_population.distinct(["A"])

    def test_sql_entry_point(self, fitted_themis, correlated_population):
        truth = correlated_population.count({"A": 0})
        estimate = fitted_themis.sql("SELECT COUNT(*) FROM sample WHERE A = 0")
        assert percent_difference(truth, estimate) < 30

    def test_sql_group_by(self, fitted_themis):
        result = fitted_themis.sql("SELECT A, COUNT(*) FROM sample GROUP BY A")
        assert len(result) == 3

    def test_sql_unknown_attribute_rejected(self, fitted_themis):
        with pytest.raises(QueryError):
            fitted_themis.sql("SELECT COUNT(*) FROM sample WHERE bogus = 1")

    def test_lazy_fit_on_query(self, biased_correlated_sample, correlated_aggregates):
        themis = Themis(n_generated_samples=3, generated_sample_size=300)
        themis.load_sample(biased_correlated_sample)
        themis.add_aggregates(correlated_aggregates)
        assert not themis.is_fitted
        themis.point({"A": 0})
        assert themis.is_fitted
