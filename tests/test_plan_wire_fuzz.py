"""Fuzzing the plan wire decoder: only ``WireFormatError`` may escape.

The sharded serving tier feeds :func:`repro.plan.wire.deserialize_plan`
bytes that crossed a process boundary, so the decoder is a trust boundary:
whatever arrives — truncated JSON, bit-rotted text, structurally mutated
payloads, type-confused fields — the decoder must either return a plan or
raise :class:`~repro.exceptions.WireFormatError`.  Any other exception
(``KeyError``, ``TypeError``, ``QueryError``, ...) escaping is a bug: the
worker loop classifies ``WireFormatError`` as a malformed request and
anything else as a worker fault, so a leak turns a bad payload into a
spurious crash/respawn cycle.

Three layers:

* a deterministic seeded sweep over thousands of truncations, character
  mutations, and structural mutations of real serialized plans (every
  golden shape, so every node/query decoder is exercised);
* hand-built type-confusion payloads for the documented failure modes;
* a bounded Hypothesis pass feeding arbitrary JSON-shaped objects straight
  into ``deserialize_plan``.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import WireFormatError
from repro.plan import PlanCompiler, deserialize_plan, plan_from_json, plan_to_json
from repro.plan.ir import LogicalPlan

from golden_plans import golden_plans
from worlds import build_fitted_themis

#: Substituted into random payload positions by the structural mutator —
#: every JSON type plus the tag values the decoders dispatch on.
_CONFUSIONS = [
    None,
    True,
    0,
    -1,
    3.5,
    "",
    "scan",
    "point",
    [],
    [[]],
    {},
    {"node": "scan"},
    {"__kind__": "tuple"},
    {"__kind__": "tuple", "items": 7},
]


@pytest.fixture(scope="module")
def themis():
    return build_fitted_themis()


@pytest.fixture(scope="module")
def compiler(themis):
    return PlanCompiler(themis.sample.schema)


@pytest.fixture(scope="module")
def corpus(themis):
    """Canonical JSON text of every golden plan (every shape, every node)."""
    return [
        plan_to_json(plan)
        for plan in golden_plans(themis.sample.schema).values()
    ]


def _decode_must_be_typed(text: str, compiler=None) -> None:
    """The invariant: decoding returns a plan or raises WireFormatError."""
    try:
        rebuilt = plan_from_json(text, compiler)
    except WireFormatError:
        return
    assert isinstance(rebuilt, LogicalPlan)


def _mutate_structure(payload, rng: random.Random, n_edits: int):
    """Apply random structural edits (delete/replace/confuse) in place."""
    for _ in range(n_edits):
        node = payload
        # Walk to a random container (dicts and lists only).
        for _ in range(rng.randrange(6)):
            if isinstance(node, dict) and node:
                node = node[rng.choice(sorted(node, key=str))]
            elif isinstance(node, list) and node:
                node = node[rng.randrange(len(node))]
            else:
                break
        if isinstance(node, dict) and node:
            key = rng.choice(sorted(node, key=str))
            action = rng.randrange(3)
            if action == 0:
                del node[key]
            elif action == 1:
                node[key] = rng.choice(_CONFUSIONS)
            else:
                node[str(rng.choice(_CONFUSIONS))] = node.pop(key)
        elif isinstance(node, list) and node:
            index = rng.randrange(len(node))
            if rng.randrange(2):
                del node[index]
            else:
                node[index] = rng.choice(_CONFUSIONS)
    return payload


class TestSeededSweep:
    def test_truncations(self, corpus):
        rng = random.Random(0x5EED)
        for text in corpus:
            cuts = {rng.randrange(len(text)) for _ in range(40)}
            cuts.update(range(0, len(text), max(1, len(text) // 20)))
            for cut in cuts:
                _decode_must_be_typed(text[:cut])

    def test_character_mutations(self, corpus):
        rng = random.Random(20260808)
        alphabet = '{}[]",:0123456789.enulabc_-'
        for text in corpus:
            for _ in range(120):
                position = rng.randrange(len(text))
                mutated = (
                    text[:position]
                    + rng.choice(alphabet)
                    + text[position + 1 :]
                )
                _decode_must_be_typed(mutated)

    def test_structural_mutations(self, corpus):
        rng = random.Random(404)
        for text in corpus:
            for round_ in range(60):
                payload = json.loads(text)
                _mutate_structure(payload, rng, n_edits=1 + round_ % 4)
                _decode_must_be_typed(json.dumps(payload))

    def test_structural_mutations_with_receiver_compiler(self, corpus, compiler):
        # The recompile-and-verify path must hold the same invariant: a
        # mutated query that no longer compiles against the receiver's
        # schema is a wire error, not a QueryError leak.
        rng = random.Random(1759)
        for text in corpus:
            for round_ in range(30):
                payload = json.loads(text)
                _mutate_structure(payload, rng, n_edits=1 + round_ % 3)
                _decode_must_be_typed(json.dumps(payload), compiler)


class TestTypeConfusion:
    @pytest.mark.parametrize(
        "payload",
        [
            None,
            7,
            "plan",
            [],
            {},
            {"format": "themis/plan"},
            {"format": "themis/plan", "version": "1"},
            {"format": 1, "version": 1},
        ],
        ids=repr,
    )
    def test_non_plan_payloads(self, payload):
        with pytest.raises(WireFormatError):
            deserialize_plan(payload)

    def test_confused_fields(self, corpus):
        base = json.loads(corpus[0])
        for field in sorted(base):
            for confusion in _CONFUSIONS:
                payload = json.loads(corpus[0])
                payload[field] = confusion
                _decode_must_be_typed(json.dumps(payload))

    def test_swapped_subtrees(self, corpus):
        # Feed every payload the root/query/key of every *other* payload:
        # cross-plan grafts must decode or fail typed, never crash.
        payloads = [json.loads(text) for text in corpus]
        for donor in payloads:
            for field in ("root", "query", "key"):
                for receiver_text in corpus:
                    receiver = json.loads(receiver_text)
                    receiver[field] = donor[field]
                    _decode_must_be_typed(json.dumps(receiver))


json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-10, 10)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.sampled_from(
        ["scan", "point", "themis/plan", "tuple", "node", "query", "__kind__", ""]
    ),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(
        st.sampled_from(
            [
                "format",
                "version",
                "node",
                "query",
                "root",
                "key",
                "shape",
                "sql",
                "labels",
                "child",
                "items",
                "__kind__",
                "predicates",
                "assignment",
            ]
        ),
        children,
        max_size=5,
    ),
    max_leaves=12,
)


class TestHypothesisFuzz:
    @settings(max_examples=300, deadline=None)
    @given(payload=json_values)
    def test_arbitrary_payloads_fail_typed(self, payload):
        try:
            result = deserialize_plan(payload)
        except WireFormatError:
            return
        assert isinstance(result, LogicalPlan)
