"""Resource governance: deadlines, budgets, admission, breakers, shutdown.

Unit layers (all clock-injected, fully deterministic):

* :class:`Deadline` / :class:`CancelToken` semantics and the typed errors
  they raise when polled;
* :class:`MemoryGovernor` pressure tiers — soft evicts coldest-by-hit-
  density, hard additionally rejects admissions, critical flushes — and the
  frozen ``governance.*`` metrics trail;
* :class:`TokenBucket` floors and :class:`AdmissionController` priority
  shedding (queue-depth caps + bucket reserves, lowest priority first);
* :class:`CircuitBreaker` state machine (closed -> open -> half-open probe).

Integration layers (one shared fitted world):

* cancelling one plan of a *fused* batch family leaves every sibling's
  answer bit-identical to an ungoverned run;
* an expired deadline surfaces mid-batch as ``DeadlineExceededError``
  through every entry point (``Themis.query``, session, batch);
* a governed session under a starvation budget still answers exactly
  ``==`` an ungoverned oracle — eviction costs hits, never bits;
* cache invariants: no stale-generation entry survives a refit, and
  ``entries()``/``peek()`` stay stat-free with a governor attached;
* worker pools shut down idempotently (double close, close after crash,
  close from the ``atexit`` guard).
"""

from __future__ import annotations

import pytest

from repro.exceptions import (
    AdmissionRejectedError,
    DeadlineExceededError,
    QueryCancelledError,
)
from repro.obs import names
from repro.obs.metrics import MetricsRegistry
from repro.query.workload import MixedQueryWorkload
from repro.serving.governance import (
    PRIORITY_BACKGROUND,
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    TIER_CRITICAL,
    TIER_HARD,
    TIER_OK,
    TIER_SOFT,
    AdmissionController,
    CancelToken,
    CircuitBreaker,
    CircuitBreakerConfig,
    Deadline,
    GovernedCache,
    MemoryGovernor,
    TokenBucket,
    measured_bytes,
    resolve_cancel_token,
)

from worlds import build_fitted_themis


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def themis():
    return build_fitted_themis()


@pytest.fixture(scope="module")
def sweep_queries(themis):
    workload = MixedQueryWorkload(themis.sample, seed=808)
    entries = workload.generate(n_point=6, n_scalar=6, n_group_by=6, n_analytic=4)
    return [entry.query for entry in entries]


@pytest.fixture(scope="module")
def expected(sweep_queries):
    oracle = build_fitted_themis()
    return oracle.execute_batch(sweep_queries).results()


# ---------------------------------------------------------------------------
# Deadlines and cancellation
# ---------------------------------------------------------------------------
class TestDeadline:
    def test_after_tracks_the_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired()
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        assert deadline.elapsed() == pytest.approx(1.5)
        clock.advance(0.5)
        assert deadline.expired()
        clock.advance(1.0)
        assert deadline.remaining() == pytest.approx(-1.0)


class TestCancelToken:
    def test_explicit_cancel_raises_typed_with_reason(self):
        token = CancelToken()
        token.poll()  # not yet fired
        assert not token.cancelled
        token.cancel(reason="client disconnected")
        assert token.cancelled
        with pytest.raises(QueryCancelledError) as info:
            token.poll()
        assert info.value.reason == "client disconnected"

    def test_deadline_expiry_raises_deadline_error(self):
        clock = FakeClock()
        token = CancelToken(deadline=Deadline.after(1.0, clock=clock))
        token.poll()
        clock.advance(2.0)
        assert token.cancelled
        with pytest.raises(DeadlineExceededError) as info:
            token.poll()
        assert info.value.budget == pytest.approx(1.0)
        assert info.value.elapsed == pytest.approx(2.0)
        # DeadlineExceededError IS a QueryCancelledError (one except clause
        # catches both) and self-describes its reason.
        assert isinstance(info.value, QueryCancelledError)
        assert info.value.reason == "deadline"

    def test_resolve_folds_cancel_and_deadline(self):
        assert resolve_cancel_token(None, None) is None
        token = resolve_cancel_token(None, 5.0)
        assert token is not None and token.deadline is not None
        assert token.deadline.budget == pytest.approx(5.0)
        explicit = CancelToken()
        assert resolve_cancel_token(explicit, None) is explicit
        # A bare token adopts the call's deadline...
        resolved = resolve_cancel_token(explicit, 1.0)
        assert resolved is explicit and explicit.deadline is not None
        # ...but a token that brought its own keeps it.
        own = Deadline.after(9.0)
        carrying = CancelToken(deadline=own)
        assert resolve_cancel_token(carrying, 1.0).deadline is own


class TestMeasuredBytes:
    def test_arrays_report_buffer_size(self):
        import numpy as np

        array = np.zeros(1000, dtype=np.float64)
        assert measured_bytes(array) >= array.nbytes

    def test_containers_accumulate(self):
        small = measured_bytes({"a": 1})
        large = measured_bytes({f"key{i}": list(range(10)) for i in range(50)})
        assert large > small > 0


# ---------------------------------------------------------------------------
# Memory governor
# ---------------------------------------------------------------------------
class FakeCache:
    """A governable cache whose entries are (nbytes, hits) pairs."""

    def __init__(self, name: str, entries: list[int], hits: int = 0):
        self.name = name
        self._entries = list(entries)
        self._hits = hits

    def byte_size(self) -> int:
        return sum(self._entries)

    def entry_count(self) -> int:
        return len(self._entries)

    def hit_count(self) -> int:
        return self._hits

    def evict_entries(self, n: int) -> int:
        victims, self._entries = self._entries[:n], self._entries[n:]
        return sum(victims)

    def flush(self) -> int:
        return self.evict_entries(self.entry_count())


class TestMemoryGovernor:
    def test_rejects_invalid_configuration(self):
        with pytest.raises(ValueError):
            MemoryGovernor(0)
        with pytest.raises(ValueError):
            MemoryGovernor(100, soft_fraction=0.9, hard_fraction=0.8)

    def test_tier_classification(self):
        governor = MemoryGovernor(1000)
        cache = FakeCache("c", [])
        governor.register(cache)
        assert governor.maintain() == TIER_OK
        cache._entries = [650]
        # 650 > 600 soft line, eviction drops the only entry.
        assert governor.maintain() in (TIER_SOFT, TIER_OK)

    def test_soft_pressure_evicts_coldest_by_hit_density(self):
        governor = MemoryGovernor(1000, eviction_fraction=1.0)
        hot = FakeCache("hot", [200], hits=1000)
        cold = FakeCache("cold", [500], hits=1)
        governor.register(hot)
        governor.register(cold)
        tier = governor.maintain()  # 700 > 600: soft pressure
        assert tier == TIER_OK
        # The cold cache was sacrificed; the hot one survived untouched.
        assert cold.entry_count() == 0
        assert hot.entry_count() == 1

    def test_critical_pressure_flushes_everything(self):
        metrics = MetricsRegistry()
        governor = MemoryGovernor(1000, metrics=metrics)
        first = FakeCache("first", [800], hits=50)
        second = FakeCache("second", [900], hits=50)
        governor.register(first)
        governor.register(second)
        governor.maintain()  # 1700 > 1000: critical
        assert first.entry_count() == 0
        assert second.entry_count() == 0
        assert metrics.counter(names.GOVERNANCE_FLUSHES).value == 1
        assert metrics.counter(names.GOVERNANCE_EVICTED_BYTES).value == 1700

    def test_hard_pressure_rejects_admissions(self):
        metrics = MetricsRegistry()
        governor = MemoryGovernor(1000, metrics=metrics)
        # A cache that refuses to shrink keeps the tier pinned at hard.
        class Stuck(FakeCache):
            def evict_entries(self, n: int) -> int:
                return 0

        governor.register(Stuck("stuck", [900], hits=5))
        assert governor.maintain() == TIER_HARD
        assert governor.admit(10) is False
        assert metrics.counter(names.GOVERNANCE_CACHE_ADMISSION_REJECTIONS).value == 1

    def test_admission_ok_under_no_pressure_but_never_oversized(self):
        governor = MemoryGovernor(1000)
        assert governor.tier == TIER_OK
        assert governor.admit(100) is True
        # A single entry larger than the whole budget can never be cached.
        assert governor.admit(2000) is False

    def test_high_water_and_gauges(self):
        metrics = MetricsRegistry()
        governor = MemoryGovernor(10_000, metrics=metrics)
        cache = FakeCache("c", [300], hits=0)
        governor.register(cache)
        governor.maintain()
        assert governor.high_water_bytes == 300
        assert metrics.gauge(names.GOVERNANCE_BUDGET_BYTES).value == 10_000
        assert metrics.gauge(names.GOVERNANCE_CACHE_BYTES).value == 300
        assert metrics.gauge(names.governed_cache_gauge("c")).value == 300
        assert metrics.gauge(names.GOVERNANCE_PRESSURE_LEVEL).value == 0
        cache._entries = []
        governor.maintain()
        # High water is monotone even after the cache shrinks.
        assert governor.high_water_bytes == 300

    def test_register_replaces_by_name(self):
        governor = MemoryGovernor(1000)
        governor.register(FakeCache("c", [100]))
        governor.register(FakeCache("c", [200]))
        assert len(governor.adapters()) == 1
        assert governor.total_bytes() == 200

    def test_governed_cache_adapter_binds_callables(self):
        state = {"evicted": 0}

        def evict(n):
            state["evicted"] += n
            return 11 * n

        adapter = GovernedCache(
            "bound", byte_size=lambda: 44, entry_count=lambda: 4,
            hit_count=lambda: 7, evict=evict,
        )
        assert adapter.byte_size() == 44
        assert adapter.entry_count() == 4
        assert adapter.hit_count() == 7
        assert adapter.evict_entries(2) == 22
        assert adapter.flush() == 44  # evicts entry_count() entries
        assert state["evicted"] == 6


# ---------------------------------------------------------------------------
# Token bucket and admission control
# ---------------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [True, True, True, False]
        clock.advance(0.1)  # one token back
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_floor_reserves_headroom(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=4.0, clock=clock)
        # Background (floor 2.0) may only drain down to two tokens.
        assert bucket.try_take(floor=2.0)
        assert bucket.try_take(floor=2.0)
        assert not bucket.try_take(floor=2.0)
        # Interactive (floor 0) still gets those reserved tokens.
        assert bucket.try_take(floor=0.0)
        assert bucket.try_take(floor=0.0)
        assert not bucket.try_take(floor=0.0)

    def test_seconds_until_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            bucket.try_take()
        assert bucket.seconds_until(1.0) == pytest.approx(0.5)
        assert bucket.seconds_until(0.0) == 0.0

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestAdmissionController:
    def test_queue_depth_caps_shed_lowest_priority_first(self):
        admission = AdmissionController(max_queue=100)
        # Depth 50 = background's cap, under batch's 75 and interactive's 100.
        with pytest.raises(AdmissionRejectedError) as info:
            admission.admit(PRIORITY_BACKGROUND, queue_depth=50)
        assert info.value.priority == PRIORITY_BACKGROUND
        assert info.value.retry_after_hint > 0
        admission.admit(PRIORITY_BATCH, queue_depth=50)
        admission.admit(PRIORITY_INTERACTIVE, queue_depth=50)
        with pytest.raises(AdmissionRejectedError):
            admission.admit(PRIORITY_BATCH, queue_depth=75)
        with pytest.raises(AdmissionRejectedError):
            admission.admit(PRIORITY_INTERACTIVE, queue_depth=100)

    def test_bucket_floors_protect_interactive(self):
        clock = FakeClock()
        admission = AdmissionController(
            max_queue=1000, rate=1.0, burst=4.0, clock=clock
        )
        # Background may take 2 of the 4 burst tokens (floor 0.5*4=2)...
        admission.admit(PRIORITY_BACKGROUND, queue_depth=0)
        admission.admit(PRIORITY_BACKGROUND, queue_depth=0)
        with pytest.raises(AdmissionRejectedError) as info:
            admission.admit(PRIORITY_BACKGROUND, queue_depth=0)
        # ...with a rate-derived hint: refilling back above the floor takes
        # about a second at 1 token/s.
        assert info.value.retry_after_hint == pytest.approx(1.0, abs=0.1)
        # The reserve still serves interactive work.
        admission.admit(PRIORITY_INTERACTIVE, queue_depth=0)
        admission.admit(PRIORITY_INTERACTIVE, queue_depth=0)
        with pytest.raises(AdmissionRejectedError):
            admission.admit(PRIORITY_INTERACTIVE, queue_depth=0)

    def test_unknown_priority_is_a_programming_error(self):
        admission = AdmissionController(max_queue=10)
        with pytest.raises(ValueError):
            admission.admit("urgent", queue_depth=0)

    def test_metrics_trail(self):
        metrics = MetricsRegistry()
        admission = AdmissionController(max_queue=10, metrics=metrics)
        admission.admit(PRIORITY_INTERACTIVE, queue_depth=0)
        with pytest.raises(AdmissionRejectedError):
            admission.admit(PRIORITY_BACKGROUND, queue_depth=5)
        assert metrics.counter(names.GOVERNANCE_REQUESTS_ADMITTED).value == 1
        assert metrics.counter(names.GOVERNANCE_REQUESTS_REJECTED).value == 1
        assert (
            metrics.counter(names.rejected_counter(PRIORITY_BACKGROUND)).value == 1
        )


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, clock):
        return CircuitBreaker.from_config(
            CircuitBreakerConfig(
                window=8, failure_threshold=0.5, min_samples=4, cooldown=2.0
            ),
            clock=clock,
        )

    def test_trips_at_failure_threshold(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.STATE_CLOSED  # 1/3 under 0.5
        breaker.record_failure()  # 2/4 hits 0.5 with min_samples met
        assert breaker.state == CircuitBreaker.STATE_OPEN
        assert breaker.times_opened == 1
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(2.0)

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.STATE_OPEN
        clock.advance(2.0)
        assert breaker.allow()  # the probe
        assert breaker.state == CircuitBreaker.STATE_HALF_OPEN
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == CircuitBreaker.STATE_CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.STATE_OPEN
        assert breaker.times_opened == 2
        assert not breaker.allow()

    def test_window_slides(self):
        clock = FakeClock()
        breaker = self.make(clock)
        # Old failures age out of the 8-outcome window before new ones
        # could combine with them across long healthy stretches.
        breaker.record_failure()
        breaker.record_failure()
        for _ in range(8):
            breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_failure()
        # Window now holds 5 successes + 3 failures: 3/8 < 0.5, closed.
        assert breaker.state == CircuitBreaker.STATE_CLOSED


# ---------------------------------------------------------------------------
# End-to-end: cancellation inside the executor
# ---------------------------------------------------------------------------
class TestSessionCancellation:
    def test_cancelling_one_fused_plan_spares_its_siblings(
        self, themis, sweep_queries, expected
    ):
        session = themis.serve()
        session.clear_caches()
        tokens = [CancelToken() for _ in sweep_queries]
        victim = 3
        tokens[victim].cancel(reason="test victim")
        batch = session.execute_batch(sweep_queries, cancel=tokens)
        for index, outcome in enumerate(batch.outcomes):
            if index == victim:
                assert outcome.cancelled
                assert isinstance(outcome.error, QueryCancelledError)
                assert outcome.result is None
            else:
                # Bit-identity: fused siblings of the cancelled plan (and
                # everyone else) answer exactly as an ungoverned run.
                assert not outcome.cancelled
                assert outcome.result == expected[index]

    def test_results_raises_the_cancelled_outcomes_error(self, themis, sweep_queries):
        session = themis.serve()
        tokens = [CancelToken() for _ in sweep_queries]
        tokens[0].cancel()
        batch = session.execute_batch(sweep_queries, cancel=tokens)
        with pytest.raises(QueryCancelledError):
            batch.results()

    def test_expired_batch_deadline_raises_mid_batch(self, themis, sweep_queries):
        session = themis.serve()
        session.clear_caches()
        clock = FakeClock()
        token = CancelToken(deadline=Deadline.after(1.0, clock=clock))
        clock.advance(5.0)  # expire before the first chunk boundary
        with pytest.raises(DeadlineExceededError):
            session.execute_batch(sweep_queries, cancel=token)

    def test_themis_query_deadline_surface(self, themis):
        # An absurdly generous deadline changes nothing...
        statement = "SELECT COUNT(*) FROM R WHERE A = 0"
        assert themis.query(statement) == themis.query(statement, deadline=3600.0)
        # ...an already-expired one raises before executing.
        with pytest.raises(DeadlineExceededError):
            themis.query(statement, deadline=Deadline.after(-1.0))

    def test_cancellation_metrics(self, themis, sweep_queries):
        session = themis.serve()
        tokens = [CancelToken() for _ in sweep_queries]
        tokens[1].cancel()
        session.execute_batch(sweep_queries, cancel=tokens)
        assert session.metrics.counter(names.GOVERNANCE_CANCELLED).value >= 1


# ---------------------------------------------------------------------------
# End-to-end: governed session bit-identity under a starvation budget
# ---------------------------------------------------------------------------
class TestGovernedSession:
    def test_starved_budget_costs_hits_never_bits(self, sweep_queries, expected):
        governed = build_fitted_themis()
        session = governed.serve(memory_budget_bytes=48 * 1024)
        assert session.governor is not None
        for _ in range(2):  # second pass re-serves through whatever survived
            produced = session.execute_batch(sweep_queries).results()
            assert produced == expected
            assert session.governor.total_bytes() <= 48 * 1024

    def test_unbudgeted_session_has_no_governor(self, themis):
        assert themis.serve().governor is None


# ---------------------------------------------------------------------------
# Cache invariants (S3)
# ---------------------------------------------------------------------------
class TestCacheInvariants:
    def test_no_stale_generation_entry_survives_refit(self, sweep_queries):
        themis = build_fitted_themis()
        session = themis.serve(memory_budget_bytes=10**9)
        session.execute_batch(sweep_queries)
        assert len(session.result_cache.entries()) > 0
        before = session.generation
        themis.refit()
        session.execute_batch(sweep_queries[:4])
        after = session.generation
        assert after is not None and after != before
        # Every surviving cache is stamped with the new generation, and the
        # result cache holds only entries written after the refit.
        assert session.result_cache.generation == after
        assert session.inference_cache.generation == after
        assert 0 < len(session.result_cache.entries()) <= 4

    def test_entries_and_peek_stay_stat_free_under_governor(self, sweep_queries):
        themis = build_fitted_themis()
        session = themis.serve(memory_budget_bytes=10**9)
        session.execute_batch(sweep_queries)
        cache = session.result_cache
        stats_before = (cache.statistics.hits, cache.statistics.misses)
        bytes_before = cache.byte_size
        order_before = [key for key, _ in cache.entries()]
        for key, _ in cache.entries():
            cache.peek(key)
            assert key in cache
        assert (cache.statistics.hits, cache.statistics.misses) == stats_before
        assert cache.byte_size == bytes_before
        # Recency order unchanged: peeks must not promote entries.
        assert [key for key, _ in cache.entries()] == order_before


# ---------------------------------------------------------------------------
# Pool shutdown (S1)
# ---------------------------------------------------------------------------
class TestPoolShutdown:
    def test_double_close_is_idempotent(self, themis):
        from repro.serving.scale import ShardedWorkerPool
        from repro.serving.scale.pool import _LIVE_POOLS

        pool = ShardedWorkerPool(themis, n_workers=1)
        assert pool in _LIVE_POOLS
        pool.close()
        assert pool not in _LIVE_POOLS
        pool.close()  # second close is a no-op, not an error

    def test_close_after_worker_crash(self, themis):
        from repro.serving.scale import ShardedWorkerPool

        pool = ShardedWorkerPool(themis, n_workers=2)
        pool._workers[0].process.kill()
        pool._workers[0].process.join(timeout=10.0)
        pool.close()  # dead pipe on shard 0 must not leak out of close()

    def test_supervised_double_close(self, themis):
        from repro.serving.scale import SupervisedWorkerPool

        pool = SupervisedWorkerPool(themis, n_workers=1)
        pool.close()
        pool.close()

    def test_atexit_guard_tolerates_closed_and_crashed_pools(self, themis):
        from repro.serving.scale import ShardedWorkerPool
        from repro.serving.scale.pool import _close_leaked_pools

        closed = ShardedWorkerPool(themis, n_workers=1)
        closed.close()
        crashed = ShardedWorkerPool(themis, n_workers=1)
        crashed._workers[0].process.kill()
        crashed._workers[0].process.join(timeout=10.0)
        # The interpreter-shutdown sweep must survive any mix of pool
        # states without raising.
        _close_leaked_pools()
        crashed.close()
