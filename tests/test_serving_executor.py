"""Tests for batched execution and serving sessions.

The load-bearing guarantee: ``Themis.execute_batch()`` returns exactly what
issuing the same queries one-by-one through ``Themis.query()`` returns, while
the caches make repeats cheap and a refit invalidates everything.
"""

from __future__ import annotations

import pytest

from repro.query import Comparison, GroupByQuery, PointQuery, Predicate, ScalarAggregateQuery
from repro.serving import BatchResult, ServingSession
from repro.sql.engine import QueryResult


WORKLOAD = [
    "SELECT COUNT(*) FROM sample WHERE A = 0",
    "SELECT COUNT(*) FROM sample WHERE A = 0 AND B = 1",
    "SELECT COUNT(*) FROM sample WHERE B = 1 AND A = 0",  # equivalent reorder
    "SELECT A, COUNT(*) FROM sample GROUP BY A",
    "SELECT B, COUNT(*) FROM sample WHERE C = 1 GROUP BY B",
    "SELECT AVG(B) FROM sample WHERE A = 0",
    "SELECT COUNT(*) FROM sample WHERE A = 2 AND B = 2 AND C = 0",
]


def assert_same_answer(left, right):
    """Bit-identity: QueryResult equality compares groups and exact floats."""
    if isinstance(left, QueryResult):
        assert isinstance(right, QueryResult)
    assert left == right


class TestBatchMatchesSingleQuery:
    def test_sql_batch_matches_query_loop(self, serving_themis):
        batch = serving_themis.serve().execute_batch(WORKLOAD)
        singles = [serving_themis.query(statement) for statement in WORKLOAD]
        assert len(batch) == len(WORKLOAD)
        for outcome, single in zip(batch, singles):
            assert_same_answer(outcome.result, single)

    def test_ast_batch_matches_query_loop(self, serving_themis):
        queries = [
            PointQuery({"A": 0}),
            PointQuery({"A": 2, "B": 2, "C": 1}),
            GroupByQuery(("A", "B")),
            ScalarAggregateQuery(predicates=(Predicate("B", Comparison.GE, 1),)),
        ]
        batch = serving_themis.serve().execute_batch(queries)
        for outcome, query in zip(batch, queries):
            assert_same_answer(outcome.result, serving_themis.query(query))

    def test_point_and_count_scalar_do_not_share_answers(self, serving_themis):
        """Regression: a PointQuery and an AST COUNT scalar over the same
        missing tuple take different BN paths (exact inference vs. generated
        samples) and must each match their own single-query answer."""
        from repro.query import AggregateFunction, AggregateSpec

        sample = serving_themis.model.weighted_sample
        missing = next(
            (
                {"A": a, "B": b, "C": c}
                for a in (0, 1, 2)
                for b in (0, 1, 2)
                for c in (0, 1)
                if not sample.contains({"A": a, "B": b, "C": c})
            ),
            None,
        )
        if missing is None:
            pytest.skip("sample covers the full domain at this seed")
        point = PointQuery(missing)
        scalar = ScalarAggregateQuery(
            aggregate=AggregateSpec(AggregateFunction.COUNT),
            predicates=tuple(
                Predicate(name, Comparison.EQ, value) for name, value in missing.items()
            ),
        )
        batch = serving_themis.serve().execute_batch([point, scalar])
        assert batch.outcomes[0].result == serving_themis.query(point)
        assert batch.outcomes[1].result == serving_themis.query(scalar)
        assert not batch.outcomes[1].deduplicated

    def test_results_are_in_submission_order(self, serving_themis):
        batch = serving_themis.serve().execute_batch(WORKLOAD)
        assert [outcome.index for outcome in batch] == list(range(len(WORKLOAD)))
        assert len(batch.results()) == len(WORKLOAD)

    def test_facade_execute_batch_entry_point(self, fresh_serving_themis):
        batch = fresh_serving_themis.execute_batch(WORKLOAD[:3])
        assert isinstance(batch, BatchResult)
        for outcome, statement in zip(batch, WORKLOAD[:3]):
            assert_same_answer(outcome.result, fresh_serving_themis.query(statement))
        # The facade keeps one shared session across calls.
        again = fresh_serving_themis.execute_batch(WORKLOAD[:3])
        assert all(o.from_result_cache or o.deduplicated for o in again)


class TestBatchAmortization:
    def test_equivalent_plans_deduplicate_within_batch(self, serving_themis):
        batch = serving_themis.serve().execute_batch(WORKLOAD)
        reordered = batch.outcomes[2]
        assert reordered.deduplicated
        assert reordered.result == batch.outcomes[1].result

    def test_warm_batch_is_fully_cached(self, serving_themis):
        session = serving_themis.serve()
        session.execute_batch(WORKLOAD)
        warm = session.execute_batch(WORKLOAD)
        assert all(o.from_result_cache or o.deduplicated for o in warm)
        assert warm.cache_hits >= len(WORKLOAD) - 1

    def test_group_signatures_batch_same_columns_together(self, serving_themis):
        session = serving_themis.serve()
        batch = session.execute_batch(WORKLOAD)
        signatures = [o.plan.group_signature for o in batch]
        assert signatures[0] != signatures[3]
        assert batch.statistics()["n_queries"] == len(WORKLOAD)

    def test_bn_samples_warm_once_per_batch(self, fresh_serving_themis):
        session = fresh_serving_themis.serve()
        evaluator = fresh_serving_themis.model.bayes_net_evaluator
        assert not evaluator.has_generated_samples
        batch = session.execute_batch(["SELECT A, COUNT(*) FROM sample GROUP BY A"])
        assert evaluator.has_generated_samples
        assert batch.amortized_inference_seconds >= 0.0

    def test_single_query_session_interface(self, serving_themis):
        session = serving_themis.serve()
        statement = "SELECT COUNT(*) FROM sample WHERE A = 0"
        first = session.execute_with_outcome(statement)
        second = session.execute_with_outcome(statement)
        assert not first.from_result_cache
        assert second.from_result_cache
        assert first.result == second.result
        assert session.execute(statement) == first.result


class TestInvalidation:
    def test_refit_invalidates_session_caches(self, fresh_serving_themis):
        session = fresh_serving_themis.serve()
        session.execute_batch(WORKLOAD[:3])
        generation = session.generation
        assert len(session.result_cache) > 0

        fresh_serving_themis.refit()
        batch = session.execute_batch(WORKLOAD[:3])
        assert session.generation != generation
        assert session.statistics.invalidations == 1
        assert not batch.outcomes[0].from_result_cache

    def test_new_aggregate_invalidates_too(self, fresh_serving_themis, correlated_population):
        from repro.aggregates import AggregateQuery

        session = fresh_serving_themis.serve()
        session.execute_batch(WORKLOAD[:2])
        generation = session.generation
        fresh_serving_themis.add_aggregate(
            AggregateQuery.from_relation(correlated_population, ["C"])
        )
        session.execute_batch(WORKLOAD[:2])
        assert session.generation != generation

    def test_refit_answers_stay_consistent(self, fresh_serving_themis):
        session = fresh_serving_themis.serve()
        before = session.execute_batch(WORKLOAD).results()
        fresh_serving_themis.refit()
        after = session.execute_batch(WORKLOAD).results()
        # Same inputs and seed: the refitted model answers identically.
        for left, right in zip(before, after):
            assert_same_answer(left, right)

    def test_clear_caches_preserves_model(self, serving_themis):
        session = serving_themis.serve()
        session.execute_batch(WORKLOAD[:2])
        session.clear_caches()
        batch = session.execute_batch(WORKLOAD[:2])
        assert not batch.outcomes[0].from_result_cache
        assert session.generation == serving_themis.generation


class TestStatistics:
    def test_session_statistics_accumulate(self, serving_themis):
        session = serving_themis.serve()
        session.execute_batch(WORKLOAD)
        session.execute_batch(WORKLOAD)
        stats = session.statistics
        assert stats.queries_served == 2 * len(WORKLOAD)
        assert stats.batches_served == 2
        assert sum(stats.route_counts.values()) == 2 * len(WORKLOAD)

    def test_describe_includes_cache_tiers(self, serving_themis):
        session = serving_themis.serve()
        session.execute_batch(WORKLOAD)
        description = session.describe()
        assert "result_cache" in description["caches"]
        assert "plan_cache" in description["caches"]
        assert "inference_cache" in description["caches"]
        assert 0.0 <= description["caches"]["result_cache"]["hit_rate"] <= 1.0

    def test_batch_statistics_shape(self, serving_themis):
        batch = serving_themis.serve().execute_batch(WORKLOAD)
        stats = batch.statistics()
        assert stats["n_queries"] == len(WORKLOAD)
        assert stats["queries_per_second"] > 0
        assert set(stats["routes"]) <= {"sample", "bayes-net", "hybrid"}


class TestServingSessionConstruction:
    def test_session_fits_lazily(
        self, biased_correlated_sample, correlated_aggregates
    ):
        from repro.core import Themis, ThemisConfig

        themis = Themis(
            ThemisConfig(seed=1, n_generated_samples=3, generated_sample_size=300)
        )
        themis.load_sample(biased_correlated_sample)
        themis.add_aggregates(correlated_aggregates)
        session = ServingSession(themis)
        assert not themis.is_fitted
        session.execute("SELECT COUNT(*) FROM sample WHERE A = 0")
        assert themis.is_fitted

    def test_cache_capacities_are_configurable(self, serving_themis):
        session = serving_themis.serve(result_cache_size=2, plan_cache_size=2)
        session.execute_batch(WORKLOAD)
        assert len(session.result_cache) <= 2
        assert len(session.plan_cache) <= 2
