"""Round-trip, serving, and result-shape tests for the rich SQL surface.

Covers the non-differential guarantees of the analytic (table-shaped)
query support:

* SQL text ↔ AST round-trips: both compile to the same canonical plan key,
  and the key is stable across compiles and predicate orderings;
* ``explain="optimized"`` keeps the canonical key through the batch
  optimizer's rewrite, and ``explain="analyze"`` records a span tree;
* serving batches answer table queries identically to per-query
  ``Themis.query`` — including from the result cache and after ``refit()``;
* :class:`TableResult` / :class:`QueryResult` container behavior, the
  ``NotImplemented`` equality protocol, and alias surfacing;
* hand-computed HAVING / ORDER BY / LIMIT / window answers on a relation
  small enough to check by eye.
"""

from __future__ import annotations

import numpy as np
import pytest

from worlds import build_correlated_population

from repro.plan import OptimizerStats
from repro.query import (
    AggregateFunction,
    AggregateSpec,
    AnalyticQuery,
    Comparison,
    MixedQueryWorkload,
    Predicate,
)
from repro.schema import Attribute, Domain, Relation, Schema
from repro.sql import WeightedQueryEngine, parse_sql
from repro.sql.engine import QueryResult, TableResult


@pytest.fixture
def tiny_relation() -> Relation:
    """Four groups with dyadic weights, so every answer is exact by eye.

    Weighted counts per group: a=3.0, b=1.5, c=1.5, d=0.5 (total 6.5);
    weighted SUM(x): a=4.0, b=6.0, c=3.0, d=0.5.
    """
    schema = Schema(
        [
            Attribute("g", Domain(["a", "b", "c", "d"])),
            Attribute("x", Domain([1.0, 2.0, 4.0])),
        ]
    )
    return Relation(
        schema,
        {"g": [0, 0, 1, 2, 3], "x": [0, 1, 2, 1, 0]},
        weights=[2.0, 1.0, 1.5, 1.5, 0.5],
    )


class TestRoundTrips:
    def test_workload_analytic_pairs_share_plan_key_and_answers(self):
        population = build_correlated_population()
        workload = MixedQueryWorkload(population, table="R", seed=11)
        entries = workload.analytic_queries(10)
        assert len(entries) == 10
        assert all(entry.shape == "table" for entry in entries)
        engine = WeightedQueryEngine(population)
        compiler = engine.executor.compiler
        for entry in entries:
            from_sql = compiler.compile(parse_sql(entry.sql).query)
            from_ast = compiler.compile(entry.query)
            assert from_sql.key == from_ast.key, entry.sql
            assert from_sql.shape == "table"
            assert engine.execute(entry.sql) == engine.execute(entry.query), entry.sql

    def test_plan_key_is_stable_and_predicate_order_insensitive(self, tiny_relation):
        compiler = WeightedQueryEngine(tiny_relation).executor.compiler
        predicates = (
            Predicate("g", Comparison.NE, "d"),
            Predicate("x", Comparison.LE, 2.0),
        )
        query = AnalyticQuery(
            group_by=("g",),
            aggregates=(
                AggregateSpec(AggregateFunction.COUNT, alias="n"),
                AggregateSpec(AggregateFunction.SUM, "x", alias="t"),
            ),
            predicates=predicates,
        )
        reordered = AnalyticQuery(
            group_by=query.group_by,
            aggregates=query.aggregates,
            predicates=predicates[::-1],
        )
        key = compiler.compile(query).key
        assert compiler.compile(query).key == key
        assert compiler.compile(reordered).key == key

    def test_mixed_generate_appends_analytic_entries(self):
        population = build_correlated_population()
        workload = MixedQueryWorkload(population, table="R", seed=5)
        entries = workload.generate(2, 2, 2, n_analytic=3)
        assert len(entries) == 9
        assert [entry.shape for entry in entries[-3:]] == ["table"] * 3

    def test_explain_optimized_preserves_canonical_key(self, serving_themis):
        sql = (
            "SELECT A, COUNT(*) AS n, AVG(B) AS mean FROM sample "
            "GROUP BY A HAVING n > 1 ORDER BY mean DESC LIMIT 2"
        )
        explained = serving_themis.query(sql, explain="optimized")
        assert explained.plan.shape == "table"
        assert explained.optimized is not None
        assert explained.optimized.key == explained.plan.key
        assert explained.result == serving_themis.query(sql)

    def test_explain_analyze_records_a_span_tree(self, serving_themis):
        sql = (
            "SELECT A, COUNT(*) AS n, RANK() OVER (ORDER BY n DESC) AS r "
            "FROM sample GROUP BY A ORDER BY r"
        )
        explained = serving_themis.query(sql, explain="analyze")
        assert explained.trace is not None
        rendered = explained.explain_analyze()
        assert "table" in rendered or "unit" in rendered
        assert explained.result == serving_themis.query(sql)


TABLE_SQL = [
    "SELECT A, COUNT(*) AS n, AVG(B) AS mean FROM sample GROUP BY A ORDER BY n DESC",
    "SELECT A, B, COUNT(*) AS n FROM sample GROUP BY A, B HAVING n >= 1 LIMIT 5",
    "SELECT A, COUNT(*) AS n, SUM(n) OVER (ORDER BY A) AS running FROM sample GROUP BY A",
    "SELECT COUNT(*) AS n, AVG(C) AS mean FROM sample WHERE B != 0",
]


class TestServingTables:
    def test_serving_batch_matches_per_query_and_caches(self, fresh_serving_themis):
        themis = fresh_serving_themis
        expected = [themis.query(sql) for sql in TABLE_SQL]
        session = themis.serve()
        batch = session.execute_batch(TABLE_SQL)
        assert batch.results() == expected
        warm = session.execute_batch(TABLE_SQL)
        assert warm.results() == expected
        assert all(
            outcome.from_result_cache or outcome.deduplicated
            for outcome in warm.outcomes
        )

    def test_serving_batch_survives_refit(self, fresh_serving_themis):
        themis = fresh_serving_themis
        population = build_correlated_population()
        session = themis.serve()
        before = session.execute_batch(TABLE_SQL).results()

        from repro.aggregates import AggregateQuery

        themis.add_aggregate(AggregateQuery.from_relation(population, ["A", "C"]))
        themis.refit()
        after = session.execute_batch(TABLE_SQL)
        assert not after.outcomes[0].from_result_cache
        assert after.results() == [themis.query(sql) for sql in TABLE_SQL]
        assert after.results() != before

    def test_window_sorts_shared_across_fused_table_plans(self, tiny_relation):
        engine = WeightedQueryEngine(tiny_relation)
        queries = [
            "SELECT g, COUNT(*) AS n, RANK() OVER (ORDER BY n DESC) AS r FROM t GROUP BY g",
            "SELECT g, SUM(x) AS t, COUNT(*) AS n, RANK() OVER (ORDER BY n DESC) AS r "
            "FROM t GROUP BY g",
        ]
        stats = OptimizerStats()
        optimized = engine.execute_batch(queries, optimize=True, stats=stats)
        assert stats.window_sorts_shared >= 1
        assert stats.groupby_fusions >= 1
        assert optimized == [engine.execute(sql) for sql in queries]


class TestTableResultBehavior:
    def test_container_protocol(self):
        table = TableResult(
            ("g", "n"), [("a", 3.0), ("b", 1.5)], group_by=("g",)
        )
        assert len(table) == 2
        assert list(table) == [("a", 3.0), ("b", 1.5)]
        assert table.column("n") == [3.0, 1.5]
        assert table.as_dicts() == [{"g": "a", "n": 3.0}, {"g": "b", "n": 1.5}]
        with pytest.raises(KeyError):
            table.column("missing")

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            TableResult(("a", "b"), [(1.0,)])

    def test_equality_is_ordered_and_typed(self):
        rows = [("a", 3.0), ("b", 1.5)]
        table = TableResult(("g", "n"), rows, group_by=("g",))
        same = TableResult(("g", "n"), rows, group_by=("g",))
        reordered = TableResult(("g", "n"), rows[::-1], group_by=("g",))
        assert table == same and hash(table) == hash(same)
        assert table != reordered
        assert table.__eq__(42) is NotImplemented
        assert (table == 42) is False
        assert (table != 42) is True

    def test_aliases_surface_in_columns(self, tiny_relation):
        engine = WeightedQueryEngine(tiny_relation)
        table = engine.execute(
            "SELECT g, COUNT(*) AS flights, SUM(x) AS total FROM t GROUP BY g"
        )
        assert table.columns == ("g", "flights", "total")
        assert table.group_by == ("g",)


class TestQueryResultEqualityProtocol:
    def test_not_implemented_defers_to_python_fallback(self):
        result = QueryResult(("g",), {("a",): 1.0})
        assert result.__eq__(5) is NotImplemented
        assert (result == 5) is False
        assert (result != 5) is True
        twin = QueryResult(("g",), {("a",): 1.0})
        assert result == twin and hash(result) == hash(twin)


class TestHandComputedPipeline:
    """Exact answers over the tiny relation, checked by eye.

    Weighted counts: a=3.0, b=1.5, c=1.5, d=0.5; SUM(x): a=4.0, b=6.0,
    c=3.0, d=0.5.
    """

    def test_multi_aggregate_rows(self, tiny_relation):
        table = WeightedQueryEngine(tiny_relation).execute(
            "SELECT g, COUNT(*) AS n, SUM(x) AS t FROM t GROUP BY g"
        )
        assert table.rows == (
            ("a", 3.0, 4.0),
            ("b", 1.5, 6.0),
            ("c", 1.5, 3.0),
            ("d", 0.5, 0.5),
        )

    def test_having_filters_group_rows(self, tiny_relation):
        table = WeightedQueryEngine(tiny_relation).execute(
            "SELECT g, COUNT(*) AS n FROM t GROUP BY g HAVING n > 1"
        )
        assert table.rows == (("a", 3.0), ("b", 1.5), ("c", 1.5))

    def test_order_by_desc_limit(self, tiny_relation):
        table = WeightedQueryEngine(tiny_relation).execute(
            "SELECT g, COUNT(*) AS n FROM t GROUP BY g ORDER BY n DESC LIMIT 2"
        )
        assert table.rows == (("a", 3.0), ("b", 1.5))

    def test_rank_peers_share_rank_with_gaps(self, tiny_relation):
        table = WeightedQueryEngine(tiny_relation).execute(
            "SELECT g, COUNT(*) AS n, RANK() OVER (ORDER BY n DESC) AS r "
            "FROM t GROUP BY g ORDER BY r, g"
        )
        # b and c tie at 1.5 → both rank 2; d jumps to rank 4 (SQL gaps).
        assert table.rows == (
            ("a", 3.0, 1),
            ("b", 1.5, 2),
            ("c", 1.5, 2),
            ("d", 0.5, 4),
        )

    def test_running_sum_accumulates_in_order(self, tiny_relation):
        table = WeightedQueryEngine(tiny_relation).execute(
            "SELECT g, COUNT(*) AS n, SUM(n) OVER (ORDER BY g) AS running "
            "FROM t GROUP BY g"
        )
        assert table.column("running") == [3.0, 4.5, 6.0, 6.5]

    def test_partition_total_sum_without_order(self, tiny_relation):
        table = WeightedQueryEngine(tiny_relation).execute(
            "SELECT g, SUM(x) AS t, SUM(t) OVER () AS grand FROM t GROUP BY g"
        )
        assert table.column("grand") == [13.5, 13.5, 13.5, 13.5]

    def test_groupless_multi_aggregate_single_row(self, tiny_relation):
        table = WeightedQueryEngine(tiny_relation).execute(
            "SELECT COUNT(*) AS n, SUM(x) AS t FROM t"
        )
        assert table.columns == ("n", "t")
        assert table.rows == ((6.5, 13.5),)

    def test_pipeline_applies_in_fixed_order(self, tiny_relation):
        """HAVING runs before windows: ranks are computed over survivors."""
        table = WeightedQueryEngine(tiny_relation).execute(
            "SELECT g, COUNT(*) AS n, RANK() OVER (ORDER BY n DESC) AS r "
            "FROM t GROUP BY g HAVING n > 1 ORDER BY r, g"
        )
        assert table.rows == (("a", 3.0, 1), ("b", 1.5, 2), ("c", 1.5, 2))
