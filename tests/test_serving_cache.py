"""Tests for the serving caches: LRU behaviour, tiers, and invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    InferenceCache,
    LRUCache,
    PlanCache,
    QueryPlanner,
    ResultCache,
)


class TestLRUCache:
    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_get_put_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing", default="d") == "d"

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.statistics.evictions == 1

    def test_put_existing_key_updates_without_eviction(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.statistics.evictions == 0

    def test_hit_miss_accounting(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("nope")
        assert cache.statistics.hits == 1
        assert cache.statistics.misses == 1
        assert cache.statistics.hit_rate == 0.5

    def test_clear_keeps_statistics(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.statistics.hits == 1


class TestResultCache:
    def test_lookup_miss_returns_none(self):
        cache = ResultCache(4)
        assert cache.lookup(("point", ())) is None

    def test_store_and_lookup(self):
        cache = ResultCache(4)
        cache.store(("point", (("A", 0),)), 42.0)
        assert cache.lookup(("point", (("A", 0),))) == 42.0

    def test_capacity_evicts_oldest_plan(self):
        cache = ResultCache(2)
        for index in range(3):
            cache.store(("point", index), float(index))
        assert cache.lookup(("point", 0)) is None
        assert cache.lookup(("point", 2)) == 2.0

    def test_invalidate_drops_entries_and_moves_generation(self):
        cache = ResultCache(4, generation=1)
        cache.store("key", 1.0)
        cache.invalidate(generation=2)
        assert cache.lookup("key") is None
        assert cache.generation == 2


class TestPlanCache:
    def test_roundtrip_and_invalidate(self, serving_themis):
        model = serving_themis.model
        planner = QueryPlanner(model.sample.schema, model)
        cache = PlanCache(8)
        sql = "SELECT COUNT(*) FROM s WHERE A = 0"
        assert cache.get(sql) is None
        cache.put(sql, planner.plan(sql))
        assert cache.get(sql).sql == sql
        cache.invalidate()
        assert cache.get(sql) is None


class TestInferenceCache:
    @pytest.fixture
    def inference_cache(self, serving_themis):
        cache = InferenceCache(serving_themis.model.bayes_net_evaluator)
        # The factor cache lives on the model's shared inference engine and
        # other tests may have warmed it; start cold so hit/miss counts are
        # deterministic.
        cache.engine.invalidate(cache.generation)
        return cache

    def test_point_matches_evaluator(self, serving_themis, inference_cache):
        evaluator = serving_themis.model.bayes_net_evaluator
        assignment = {"A": 1, "B": 2}
        assert inference_cache.point(assignment) == evaluator.point(assignment)

    def test_point_signature_factor_is_memoized(self, inference_cache):
        first = inference_cache.point({"A": 1})
        second = inference_cache.point({"A": 1})
        assert first == second
        assert inference_cache.statistics.hits == 1
        assert inference_cache.statistics.misses == 1
        # A *different* assignment with the same evidence signature reuses
        # the eliminated factor too: per-signature caching, not per-answer.
        inference_cache.point({"A": 2})
        assert inference_cache.statistics.hits == 2
        assert inference_cache.statistics.misses == 1

    def test_batch_pays_one_elimination_per_signature(self, inference_cache):
        batch = [{"A": 0}, {"A": 1}, {"A": 2, "B": 0}, {"B": 0, "A": 1}]
        answers = inference_cache.point_batch(batch)
        assert answers == [inference_cache.evaluator.point(a) for a in batch]
        # One factor lookup per signature group ({A} and {A,B}), both cold.
        assert inference_cache.statistics.misses == 2
        assert inference_cache.statistics.hits == 0
        # The same batch again touches both factors without re-eliminating.
        inference_cache.point_batch(batch)
        assert inference_cache.statistics.hits == 2
        assert inference_cache.engine.elimination_passes >= 2

    def test_marginal_is_memoized_and_normalized(self, inference_cache):
        marginal = inference_cache.marginal("A")
        again = inference_cache.marginal("A")
        assert np.allclose(marginal, again)
        assert marginal.sum() == pytest.approx(1.0)
        assert inference_cache.statistics.hits == 1

    def test_warm_samples_materializes_once(self, inference_cache):
        samples = inference_cache.warm_samples()
        assert len(samples) == 3  # K from the fixture's config
        assert inference_cache.samples_warm
        again = inference_cache.warm_samples()
        assert [id(s) for s in samples] == [id(s) for s in again]

    def test_invalidate_rebinds_and_resets(self, fresh_serving_themis):
        cache = InferenceCache(fresh_serving_themis.model.bayes_net_evaluator)
        cache.point({"A": 0})
        cache.marginal("A")
        cache.warm_samples()
        new_model = fresh_serving_themis.refit()
        cache.invalidate(new_model.bayes_net_evaluator, generation=99)
        assert cache.generation == 99
        assert not cache._samples_warm
        assert cache.evaluator is new_model.bayes_net_evaluator
        # Memoized state was dropped: next lookups are misses again.
        before = cache.statistics.misses
        cache.point({"A": 0})
        assert cache.statistics.misses == before + 1
