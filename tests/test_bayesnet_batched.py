"""Tests for batched variable-elimination inference.

The load-bearing guarantee: batching shares work but never changes answers —
``BatchedInference.probability_batch`` is bit-identical to per-query
``ExactInference.probability``, across mixed evidence signatures,
out-of-domain values, and cache generations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesnet import (
    BatchedInference,
    ExactInference,
    group_by_signature,
    signature_of,
)
from repro.exceptions import BayesNetError
from repro.query import PointQuery

MIXED_BATCH = [
    {"A": 0},
    {"B": 1, "A": 2},
    {"A": 2, "B": 1},  # same signature (and same assignment) as above
    {"C": 1},
    {"A": 1, "B": 0, "C": 1},
    {"C": 0, "A": 0},
    {"B": 2},
    {"A": 1, "C": 0},  # same signature as {"C": 0, "A": 0}
]


@pytest.fixture
def network(serving_themis):
    return serving_themis.model.bayes_net_evaluator.network


def missing_assignments(themis) -> list[dict]:
    """Mixed-signature assignments absent from the sample (hence BN-routed)."""
    sample = themis.model.weighted_sample
    candidates = [
        {"A": a, "B": b} for a in (0, 1, 2) for b in (0, 1, 2)
    ] + [
        {"B": b, "C": c} for b in (0, 1, 2) for c in (0, 1)
    ] + [
        {"A": a, "B": b, "C": c}
        for a in (0, 1, 2)
        for b in (0, 1, 2)
        for c in (0, 1)
    ]
    return [a for a in candidates if not sample.contains(a)]


class TestSignatureHelpers:
    def test_signature_is_sorted_variable_names(self):
        assert signature_of({"b": 1, "a": 0}) == ("a", "b")
        assert signature_of({}) == ()

    def test_insertion_order_does_not_matter(self):
        assert signature_of({"x": 1, "y": 2}) == signature_of({"y": 9, "x": 0})

    def test_grouping_preserves_batch_order(self):
        groups = group_by_signature([{"a": 0}, {"b": 1}, {"a": 2}, {"a": 1, "b": 0}])
        assert groups == {("a",): [0, 2], ("b",): [1], ("a", "b"): [3]}


class TestBitIdentity:
    def test_mixed_signature_batch_matches_per_query(self, network):
        engine = BatchedInference(network)
        batched = engine.probability_batch(MIXED_BATCH)
        # Fresh single-query engines: one independent elimination per query.
        singles = [ExactInference(network).probability(a) for a in MIXED_BATCH]
        assert batched.tolist() == singles  # exact float equality, bit for bit

    def test_delegating_single_path_is_the_batched_path(self, network):
        shared = ExactInference(network)
        singles = [shared.probability(a) for a in MIXED_BATCH]
        batched = BatchedInference(network).probability_batch(MIXED_BATCH)
        assert batched.tolist() == singles

    def test_evaluator_point_batch_matches_point(self, serving_themis):
        evaluator = serving_themis.model.bayes_net_evaluator
        batched = evaluator.point_batch(MIXED_BATCH)
        assert batched == [evaluator.point(a) for a in MIXED_BATCH]

    def test_hybrid_point_batch_routes_like_point(self, serving_themis):
        hybrid = serving_themis.model.hybrid_evaluator
        # Mix of in-sample tuples (sample route) and missing ones (BN route).
        batch = MIXED_BATCH + [{"A": 0, "B": 0, "C": 0}]
        assert hybrid.point_batch(batch) == [hybrid.point(a) for a in batch]

    def test_themis_facade_point_batch(self, serving_themis):
        answers = serving_themis.point_batch(MIXED_BATCH)
        assert answers == [serving_themis.point(a) for a in MIXED_BATCH]


class TestEdgeCases:
    def test_empty_batch(self, network):
        engine = BatchedInference(network)
        assert engine.probability_batch([]).tolist() == []
        assert engine.elimination_passes == 0

    def test_singleton_batch(self, network):
        engine = BatchedInference(network)
        assert engine.probability_batch([{"A": 0}])[0] == ExactInference(
            network
        ).probability({"A": 0})

    def test_empty_assignment_has_probability_one(self, network):
        engine = BatchedInference(network)
        assert engine.probability_batch([{}]).tolist() == [1.0]
        assert engine.elimination_passes == 0

    def test_out_of_domain_value_is_zero_inside_a_batch(self, network):
        engine = BatchedInference(network)
        batch = [{"A": 0}, {"A": 99}, {"B": 1, "A": "nope"}, {"B": 1}]
        results = engine.probability_batch(batch)
        assert results[1] == 0.0
        assert results[2] == 0.0
        assert results[0] == ExactInference(network).probability({"A": 0})
        assert results[3] == ExactInference(network).probability({"B": 1})
        # Out-of-domain assignments never pay an elimination pass.
        assert engine.elimination_passes == 2

    def test_unknown_attribute_raises_like_single_path(self, network):
        engine = BatchedInference(network)
        with pytest.raises(BayesNetError):
            engine.probability_batch([{"A": 0}, {"Z": 1}])
        assert engine.probability_or_zero_batch([{"Z": 1}, {"A": 0}])[0] == 0.0

    def test_probabilities_are_clipped_to_unit_interval(self, network):
        engine = BatchedInference(network)
        values = engine.probability_batch(MIXED_BATCH)
        assert np.all(values >= 0.0) and np.all(values <= 1.0)


class TestFactorCache:
    def test_one_elimination_pass_per_signature(self, network):
        engine = BatchedInference(network)
        engine.probability_batch(MIXED_BATCH)
        signatures = {signature_of(a) for a in MIXED_BATCH}
        assert engine.elimination_passes == len(signatures)
        assert engine.cached_factor_count == len(signatures)

    def test_repeat_batch_runs_no_new_eliminations(self, network):
        engine = BatchedInference(network)
        engine.probability_batch(MIXED_BATCH)
        passes = engine.elimination_passes
        engine.probability_batch(MIXED_BATCH)
        assert engine.elimination_passes == passes
        assert engine.factor_cache_hits > 0

    def test_capacity_is_lru_bounded(self, network):
        engine = BatchedInference(network, factor_cache_capacity=2)
        engine.probability_batch(MIXED_BATCH)
        assert engine.cached_factor_count <= 2
        engine.factor_cache_capacity = 1
        assert engine.cached_factor_count <= 1
        with pytest.raises(ValueError):
            engine.factor_cache_capacity = 0

    def test_invalidate_drops_factors_and_moves_generation(self, network):
        engine = BatchedInference(network)
        engine.probability_batch([{"A": 0}])
        assert engine.cached_factor_count == 1
        engine.invalidate(generation=7)
        assert engine.cached_factor_count == 0
        assert engine.generation == 7
        engine.probability_batch([{"A": 0}])
        assert engine.elimination_passes == 2  # the factor was re-eliminated


class TestServingIntegration:
    def test_batch_of_bn_points_is_dispatched_batched(self, sparse_serving_themis):
        missing = missing_assignments(sparse_serving_themis)
        assert len({signature_of(a) for a in missing}) >= 2  # mixed signatures
        session = sparse_serving_themis.serve()
        batch = session.execute_batch([PointQuery(a) for a in missing])
        assert batch.bn_batched_points == len(missing)
        assert batch.bn_elimination_passes <= len(
            {signature_of(a) for a in missing}
        )
        assert batch.bn_batch_seconds >= 0.0
        assert session.statistics.bn_points_batched == len(missing)
        for outcome, assignment in zip(batch, missing):
            assert outcome.bn_batched
            assert outcome.result == sparse_serving_themis.point(assignment)

    def test_single_query_serving_counts_as_single(self, sparse_serving_themis):
        missing = missing_assignments(sparse_serving_themis)[0]
        session = sparse_serving_themis.serve()
        outcome = session.execute_with_outcome(PointQuery(missing))
        assert outcome.is_bn_point
        assert not outcome.bn_batched
        assert session.statistics.bn_points_single == 1

    def test_batched_dispatch_counts_result_cache_misses(self, sparse_serving_themis):
        """The batched dispatch must not distort result-cache statistics."""
        missing = missing_assignments(sparse_serving_themis)
        session = sparse_serving_themis.serve()
        session.execute_batch([PointQuery(a) for a in missing])
        stats = session.result_cache.statistics
        assert stats.misses == len(missing)  # one counted miss per cold plan
        assert stats.hits == 0
        session.execute_batch([PointQuery(a) for a in missing])
        assert session.result_cache.statistics.hits == len(missing)

    def test_out_of_domain_point_in_a_batch_is_zero(self, sparse_serving_themis):
        in_domain = missing_assignments(sparse_serving_themis)[0]
        out_of_domain = {"A": 99, "B": 0}
        session = sparse_serving_themis.serve()
        batch = session.execute_batch(
            [PointQuery(in_domain), PointQuery(out_of_domain)]
        )
        assert batch.outcomes[1].result == 0.0
        assert batch.outcomes[0].result == sparse_serving_themis.point(in_domain)

    def test_refit_invalidates_per_signature_factors(self, fresh_serving_themis):
        session = fresh_serving_themis.serve()
        missing = missing_assignments(fresh_serving_themis)
        assert missing, "expected at least one out-of-sample assignment"
        queries = [PointQuery(a) for a in missing]
        before = session.execute_batch(queries)
        engine = session.inference_cache.engine
        assert engine.cached_factor_count > 0
        old_generation = engine.generation

        fresh_serving_themis.refit()
        after = session.execute_batch(queries)
        engine = session.inference_cache.engine
        assert engine.generation != old_generation
        # Same inputs and seed: the refitted model answers identically, and
        # the batch had to pay fresh elimination passes (no stale factors).
        assert after.bn_elimination_passes > 0
        assert before.results() == after.results()

    def test_inference_cache_describe_exposes_engine_counters(self, serving_themis):
        session = serving_themis.serve()
        session.execute_batch(["SELECT COUNT(*) FROM sample WHERE A = 0"])
        description = session.describe()
        inference = description["caches"]["inference_cache"]
        assert {"elimination_passes", "factor_cache_hits", "cached_factors"} <= set(
            inference
        )


class TestExports:
    def test_public_api_exports_batched_names(self):
        import repro

        for name in ("BatchedInference", "signature_of", "group_by_signature"):
            assert name in repro.__all__
            assert hasattr(repro, name)
