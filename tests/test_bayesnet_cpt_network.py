"""Tests for CPTs, the BayesianNetwork container, inference, and sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesnet import (
    BayesianNetwork,
    ConditionalProbabilityTable,
    DirectedAcyclicGraph,
    ExactInference,
    ForwardSampler,
    cpt_for_schema,
)
from repro.exceptions import BayesNetError
from repro.schema import Attribute, Domain, Relation, Schema


@pytest.fixture
def rain_schema() -> Schema:
    return Schema(
        [
            Attribute("rain", ["no", "yes"]),
            Attribute("sprinkler", ["off", "on"]),
            Attribute("wet", ["dry", "wet"]),
        ]
    )


@pytest.fixture
def rain_network(rain_schema) -> BayesianNetwork:
    """The classic rain/sprinkler/wet-grass network with known CPTs."""
    graph = DirectedAcyclicGraph(
        rain_schema.names, [("rain", "sprinkler"), ("rain", "wet"), ("sprinkler", "wet")]
    )
    network = BayesianNetwork(rain_schema, graph)
    network.set_cpt(
        ConditionalProbabilityTable("rain", (), 2, (), table=np.array([[0.8, 0.2]]))
    )
    network.set_cpt(
        ConditionalProbabilityTable(
            "sprinkler", ("rain",), 2, (2,), table=np.array([[0.6, 0.4], [0.99, 0.01]])
        )
    )
    network.set_cpt(
        ConditionalProbabilityTable(
            "wet",
            ("rain", "sprinkler"),
            2,
            (2, 2),
            table=np.array([[1.0, 0.0], [0.2, 0.8], [0.1, 0.9], [0.01, 0.99]]),
        )
    )
    return network


class TestCPT:
    def test_default_is_uniform(self):
        cpt = ConditionalProbabilityTable("x", (), 4, ())
        assert np.allclose(cpt.table, 0.25)

    def test_config_index_roundtrip(self):
        cpt = ConditionalProbabilityTable("x", ("p", "q"), 2, (3, 4))
        for index in range(cpt.n_parent_configs):
            assert cpt.config_index(cpt.config_codes(index)) == index

    def test_config_index_mapping_input(self):
        cpt = ConditionalProbabilityTable("x", ("p", "q"), 2, (2, 3))
        assert cpt.config_index({"p": 1, "q": 2}) == 1 * 3 + 2

    def test_probability_and_distribution(self):
        table = np.array([[0.3, 0.7], [0.9, 0.1]])
        cpt = ConditionalProbabilityTable("x", ("p",), 2, (2,), table=table)
        assert cpt.probability(1, [0]) == 0.7
        assert cpt.distribution([1]).tolist() == [0.9, 0.1]

    def test_set_distribution_normalizes(self):
        cpt = ConditionalProbabilityTable("x", (), 2, ())
        cpt.set_distribution((), [2.0, 2.0])
        assert cpt.distribution(()).tolist() == [0.5, 0.5]

    def test_set_distribution_rejects_negative(self):
        cpt = ConditionalProbabilityTable("x", (), 2, ())
        with pytest.raises(BayesNetError):
            cpt.set_distribution((), [-1.0, 2.0])

    def test_normalize_handles_zero_rows(self):
        cpt = ConditionalProbabilityTable(
            "x", ("p",), 2, (2,), table=np.array([[0.0, 0.0], [3.0, 1.0]])
        )
        cpt.normalize()
        assert cpt.distribution([0]).tolist() == [0.5, 0.5]
        assert cpt.distribution([1]).tolist() == [0.75, 0.25]

    def test_from_counts_with_smoothing(self):
        counts = np.array([[0.0, 0.0], [8.0, 2.0]])
        cpt = ConditionalProbabilityTable.from_counts(
            "x", ("p",), 2, (2,), counts, smoothing=1.0
        )
        assert cpt.distribution([0]).tolist() == [0.5, 0.5]
        assert cpt.distribution([1])[0] == pytest.approx(9 / 12)

    def test_counts_from_relation(self, rain_schema):
        relation = Relation.from_rows(
            rain_schema,
            [("no", "off", "dry"), ("yes", "on", "wet"), ("no", "off", "dry")],
        )
        counts = ConditionalProbabilityTable.counts_from_relation(
            relation, "wet", ("rain",)
        )
        assert counts.shape == (2, 2)
        assert counts[0, 0] == 2.0  # rain=no, wet=dry
        assert counts[1, 1] == 1.0  # rain=yes, wet=wet

    def test_counts_from_relation_respects_weights(self, rain_schema):
        relation = Relation.from_rows(
            rain_schema, [("no", "off", "dry")], weights=[5.0]
        )
        counts = ConditionalProbabilityTable.counts_from_relation(
            relation, "wet", (), weighted=True
        )
        assert counts[0, 0] == 5.0

    def test_to_factor_shape(self):
        cpt = ConditionalProbabilityTable("x", ("p",), 3, (2,))
        factor = cpt.to_factor()
        assert factor.attributes == ("p", "x")
        assert factor.table.shape == (2, 3)

    def test_invalid_table_shape_rejected(self):
        with pytest.raises(BayesNetError):
            ConditionalProbabilityTable("x", ("p",), 2, (2,), table=np.ones((3, 2)))

    def test_n_parameters(self):
        cpt = ConditionalProbabilityTable("x", ("p",), 4, (3,))
        assert cpt.n_parameters == 3 * 3


class TestBayesianNetwork:
    def test_joint_probability_chain_rule(self, rain_network):
        probability = rain_network.joint_probability(
            {"rain": "yes", "sprinkler": "off", "wet": "wet"}
        )
        assert probability == pytest.approx(0.2 * 0.99 * 0.9)

    def test_joint_probability_requires_all_nodes(self, rain_network):
        with pytest.raises(BayesNetError):
            rain_network.joint_probability({"rain": "yes"})

    def test_set_cpt_checks_parents(self, rain_network, rain_schema):
        with pytest.raises(BayesNetError):
            rain_network.set_cpt(
                ConditionalProbabilityTable("wet", ("rain",), 2, (2,))
            )

    def test_n_parameters(self, rain_network):
        # rain: 1, sprinkler: 2, wet: 4 free parameters.
        assert rain_network.n_parameters() == 1 + 2 + 4

    def test_log_likelihood_finite_even_for_impossible_tuple(
        self, rain_network, rain_schema
    ):
        relation = Relation.from_rows(rain_schema, [("no", "off", "wet")])
        assert np.isfinite(rain_network.log_likelihood(relation))

    def test_copy_is_deep(self, rain_network):
        copied = rain_network.copy()
        copied.cpt("rain").table[0, 0] = 0.5
        assert rain_network.cpt("rain").table[0, 0] == 0.8

    def test_cpt_for_schema_helper(self, rain_schema):
        cpt = cpt_for_schema(rain_schema, "wet", ("rain",))
        assert cpt.table.shape == (2, 2)


class TestExactInference:
    def test_marginal_of_root(self, rain_network):
        marginal = ExactInference(rain_network).marginal("rain")
        assert marginal.tolist() == pytest.approx([0.8, 0.2])

    def test_marginal_of_leaf_matches_enumeration(self, rain_network):
        inference = ExactInference(rain_network)
        wet_marginal = inference.marginal("wet")
        # Brute-force enumeration over the joint.
        total = 0.0
        for rain in ("no", "yes"):
            for sprinkler in ("off", "on"):
                total += rain_network.joint_probability(
                    {"rain": rain, "sprinkler": sprinkler, "wet": "wet"}
                )
        assert wet_marginal[1] == pytest.approx(total)

    def test_partial_assignment_probability(self, rain_network):
        inference = ExactInference(rain_network)
        probability = inference.probability({"rain": "yes", "wet": "wet"})
        expected = sum(
            rain_network.joint_probability(
                {"rain": "yes", "sprinkler": sprinkler, "wet": "wet"}
            )
            for sprinkler in ("off", "on")
        )
        assert probability == pytest.approx(expected)

    def test_empty_assignment_probability_is_one(self, rain_network):
        assert ExactInference(rain_network).probability({}) == 1.0

    def test_out_of_domain_value_gives_zero(self, rain_network):
        assert (
            ExactInference(rain_network).probability_or_zero({"rain": "maybe"}) == 0.0
        )

    def test_conditional(self, rain_network):
        inference = ExactInference(rain_network)
        conditional = inference.conditional("wet", {"rain": "yes"})
        joint_wet = inference.probability({"rain": "yes", "wet": "wet"})
        assert conditional[1] == pytest.approx(joint_wet / 0.2)

    def test_joint_marginal_order(self, rain_network):
        factor = ExactInference(rain_network).joint_marginal(["sprinkler", "rain"])
        assert factor.attributes == ("sprinkler", "rain")
        assert factor.table.sum() == pytest.approx(1.0)

    def test_unknown_attribute_rejected(self, rain_network):
        with pytest.raises(BayesNetError):
            ExactInference(rain_network).probability({"bogus": 1})


class TestForwardSampler:
    def test_sample_size_and_weights(self, rain_network):
        sample = ForwardSampler(rain_network, seed=0).sample_relation(
            500, population_size=5000
        )
        assert sample.n_rows == 500
        assert sample.total_weight() == pytest.approx(5000.0)

    def test_sampled_marginal_close_to_model(self, rain_network):
        sample = ForwardSampler(rain_network, seed=1).sample_relation(4000)
        rain_fraction = sample.count({"rain": "yes"}) / sample.n_rows
        assert rain_fraction == pytest.approx(0.2, abs=0.03)

    def test_sample_many(self, rain_network):
        samples = ForwardSampler(rain_network, seed=2).sample_many(3, 100)
        assert len(samples) == 3
        assert all(sample.n_rows == 100 for sample in samples)

    def test_deterministic_with_seed(self, rain_network):
        first = ForwardSampler(rain_network, seed=7).sample_relation(50)
        second = ForwardSampler(rain_network, seed=7).sample_relation(50)
        assert list(first.iter_rows()) == list(second.iter_rows())

    def test_invalid_sizes_rejected(self, rain_network):
        sampler = ForwardSampler(rain_network, seed=0)
        with pytest.raises(BayesNetError):
            sampler.sample_codes(-1)
        with pytest.raises(BayesNetError):
            sampler.sample_many(0, 10)
