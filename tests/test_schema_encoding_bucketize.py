"""Tests for one-hot encoding and equi-width bucketization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SchemaError
from repro.schema import (
    Attribute,
    Domain,
    EquiWidthBucketizer,
    OneHotEncoder,
    Relation,
    Schema,
    bucketize_column,
)


@pytest.fixture
def relation() -> Relation:
    schema = Schema([Attribute("a", ["x", "y"]), Attribute("b", [0, 1, 2])])
    rows = [("x", 0), ("y", 2), ("x", 1)]
    return Relation.from_rows(schema, rows)


class TestOneHotEncoder:
    def test_matrix_shape_includes_intercept(self, relation):
        encoder = OneHotEncoder(relation)
        # 1 intercept + 2 (a) + 3 (b) columns.
        assert encoder.matrix().shape == (3, 6)

    def test_each_row_has_one_indicator_per_attribute(self, relation):
        matrix = OneHotEncoder(relation).matrix()
        # intercept + exactly one indicator per encoded attribute.
        assert np.all(matrix.sum(axis=1) == 3)

    def test_without_intercept(self, relation):
        encoder = OneHotEncoder(relation, add_intercept=False)
        assert encoder.matrix().shape == (3, 5)

    def test_column_index_lookup(self, relation):
        encoder = OneHotEncoder(relation)
        matrix = encoder.matrix()
        index = encoder.column_index("b", 2)
        assert matrix[1, index] == 1.0
        assert matrix[0, index] == 0.0

    def test_subset_of_attributes(self, relation):
        encoder = OneHotEncoder(relation, attributes=["b"])
        assert encoder.matrix().shape == (3, 4)

    def test_unknown_attribute_rejected(self, relation):
        with pytest.raises(SchemaError):
            OneHotEncoder(relation, attributes=["missing"])

    def test_encode_assignment(self, relation):
        encoder = OneHotEncoder(relation)
        row = encoder.encode_assignment({"a": "y"})
        assert row[0] == 1.0  # intercept
        assert row[encoder.column_index("a", "y")] == 1.0
        assert row.sum() == 2.0

    def test_paper_example_matrix(self, paper_sample):
        """The one-hot matrix of Example 4.1 has 1 + 2 + 3 + 3 columns."""
        encoder = OneHotEncoder(paper_sample)
        matrix = encoder.matrix()
        assert matrix.shape == (4, 9)
        assert np.all(matrix[:, 0] == 1.0)


class TestBucketizer:
    def test_codes_cover_all_buckets(self):
        bucketizer = EquiWidthBucketizer(4)
        codes = bucketizer.fit_transform(np.linspace(0, 10, 100))
        assert set(codes.tolist()) == {0, 1, 2, 3}

    def test_max_value_lands_in_last_bucket(self):
        bucketizer = EquiWidthBucketizer(5)
        codes = bucketizer.fit_transform([0, 1, 2, 3, 10])
        assert codes[-1] == 4

    def test_explicit_range(self):
        bucketizer = EquiWidthBucketizer(2, low=0.0, high=10.0)
        bucketizer.fit([])
        assert bucketizer.transform([1.0, 9.0]).tolist() == [0, 1]

    def test_constant_column(self):
        codes, _ = bucketize_column([5.0, 5.0, 5.0], 3)
        assert set(codes.tolist()) == {0}

    def test_invalid_bucket_count(self):
        with pytest.raises(SchemaError):
            EquiWidthBucketizer(0)

    def test_unfitted_transform_raises(self):
        with pytest.raises(SchemaError):
            EquiWidthBucketizer(3).transform([1.0])

    def test_buckets_metadata(self):
        bucketizer = EquiWidthBucketizer(2, low=0.0, high=4.0)
        bucketizer.fit([])
        buckets = bucketizer.buckets()
        assert buckets[0].low == 0.0 and buckets[1].high == 4.0
        assert buckets[0].midpoint() == 1.0

    def test_to_attribute(self):
        bucketizer = EquiWidthBucketizer(3, low=0, high=1)
        attribute = bucketizer.to_attribute("x")
        assert attribute.size == 3

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50),
        n_buckets=st.integers(1, 10),
    )
    def test_codes_always_in_range(self, values, n_buckets):
        codes, _ = bucketize_column(values, n_buckets)
        assert codes.min() >= 0
        assert codes.max() < n_buckets
