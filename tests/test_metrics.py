"""Tests for the percent-difference error metrics (Sec. 6.3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    MAX_PERCENT_DIFFERENCE,
    ErrorSummary,
    average_group_by_error,
    group_by_percent_differences,
    percent_difference,
    percent_differences,
    percent_improvement,
)


class TestPercentDifference:
    def test_exact_match_is_zero(self):
        assert percent_difference(10, 10) == 0.0

    def test_both_zero_is_zero(self):
        assert percent_difference(0, 0) == 0.0

    def test_missing_value_is_maximum(self):
        assert percent_difference(10, 0) == MAX_PERCENT_DIFFERENCE
        assert percent_difference(0, 10) == MAX_PERCENT_DIFFERENCE

    def test_symmetry(self):
        assert percent_difference(5, 15) == percent_difference(15, 5)

    def test_known_value(self):
        # 2 * |100 - 50| / 150 = 0.666... -> 66.7 on the 0-200 scale.
        assert percent_difference(100, 50) == pytest.approx(200 / 3)

    def test_vectorized_matches_scalar(self):
        values = percent_differences([1, 2, 3], [1, 4, 0])
        assert values[0] == 0.0
        assert values[2] == MAX_PERCENT_DIFFERENCE

    def test_vectorized_length_mismatch(self):
        with pytest.raises(ValueError):
            percent_differences([1], [1, 2])

    @settings(max_examples=50, deadline=None)
    @given(
        true=st.floats(0, 1e9, allow_nan=False),
        estimate=st.floats(0, 1e9, allow_nan=False),
    )
    def test_bounds_property(self, true, estimate):
        value = percent_difference(true, estimate)
        assert 0.0 <= value <= MAX_PERCENT_DIFFERENCE


class TestGroupByErrors:
    def test_missed_and_phantom_groups_get_maximum(self):
        truth = {("a",): 10.0, ("b",): 5.0}
        estimate = {("a",): 10.0, ("c",): 3.0}
        errors = group_by_percent_differences(truth, estimate)
        assert errors[("a",)] == 0.0
        assert errors[("b",)] == MAX_PERCENT_DIFFERENCE  # missed
        assert errors[("c",)] == MAX_PERCENT_DIFFERENCE  # phantom

    def test_average_group_by_error(self):
        truth = {("a",): 10.0}
        estimate = {("a",): 10.0, ("b",): 1.0}
        assert average_group_by_error(truth, estimate) == 100.0

    def test_empty_results(self):
        assert average_group_by_error({}, {}) == 0.0


class TestErrorSummary:
    def test_summary_statistics(self):
        summary = ErrorSummary.from_errors([0, 50, 100, 150, 200])
        assert summary.n == 5
        assert summary.median == 100
        assert summary.mean == 100
        assert summary.maximum == 200
        assert summary.p25 == 50
        assert summary.p75 == 150

    def test_empty_summary(self):
        summary = ErrorSummary.from_errors([])
        assert summary.n == 0
        assert summary.mean == 0.0

    def test_as_dict(self):
        assert set(ErrorSummary.from_errors([1.0]).as_dict()) == {
            "n",
            "mean",
            "median",
            "p25",
            "p75",
            "max",
        }


class TestPercentImprovement:
    def test_improvement(self):
        assert percent_improvement(20, 10) == pytest.approx(100.0)

    def test_zero_improved_error_is_infinite(self):
        assert percent_improvement(10, 0) == float("inf")

    def test_both_zero(self):
        assert percent_improvement(0, 0) == 0.0

    def test_regression_is_negative(self):
        assert percent_improvement(10, 20) == pytest.approx(-50.0)
