"""Differential testing of the SQL surface against a naive reference engine.

A seeded generator produces random relations (mixed string/numeric domains,
zero and non-dyadic weights) and random queries over every supported SQL
shape — point, scalar, GROUP BY, and the full analytic surface (multi-
aggregate, HAVING, window functions, ORDER BY/LIMIT).  Each query is
answered four ways and every answer must be **exactly** equal (``==``, no
tolerance):

* the row-at-a-time reference engine (``tests/oracle.py``),
* the per-plan columnar path (``engine.execute``),
* the unoptimized batch loop (``execute_batch(optimize=False)``),
* the batch-aware optimizer (``execute_batch(optimize=True)``),

and, for queries the generator can render to SQL text, the parser path as
well.  ``SQL_DIFFERENTIAL_SWEEP`` scales the number of generated queries
(the CI sweep step runs hundreds; the default keeps tier-1 fast).  Every
assertion message carries the generator seed for replay.
"""

from __future__ import annotations

import os

import numpy as np

from worlds import build_correlated_population, build_fitted_themis
from oracle import ReferenceEngine

from repro.aggregates import AggregateQuery
from repro.query import (
    AggregateFunction,
    AggregateSpec,
    AnalyticQuery,
    Comparison,
    GroupByQuery,
    HavingPredicate,
    OrderKey,
    PointQuery,
    Predicate,
    ScalarAggregateQuery,
    WindowFunction,
    WindowSpec,
)
from repro.schema import Attribute, Domain, Relation, Schema
from repro.sql import WeightedQueryEngine

#: Total number of generated queries; the CI sweep step raises this to 240.
SWEEP = int(os.environ.get("SQL_DIFFERENTIAL_SWEEP", "42"))
QUERIES_PER_RELATION = 6

def pick(rng: np.random.Generator, options):
    """Choose one element without numpy dtype coercion (enums stay enums)."""
    return options[int(rng.integers(len(options)))]


STRING_ATTRIBUTES = ("state", "carrier")
NUMERIC_ATTRIBUTES = ("delay", "dist")
GROUPABLE = ("state", "carrier", "delay")


# ---------------------------------------------------------------------------
# Random relation / query generation
# ---------------------------------------------------------------------------
def build_random_relation(rng: np.random.Generator) -> Relation:
    """A small random weighted relation with string and numeric domains."""
    n_rows = int(rng.integers(40, 90))
    schema = Schema(
        [
            Attribute("state", Domain(["CA", "CO", "NY", "TX", "WA"][: int(rng.integers(3, 6))])),
            Attribute("carrier", Domain(["AA", "DL", "UA"][: int(rng.integers(2, 4))])),
            Attribute("delay", Domain([0, 15, 30, 60, 120][: int(rng.integers(3, 6))])),
            Attribute("dist", Domain([0.5, 1.1, 2.5, 10.0][: int(rng.integers(2, 5))])),
        ]
    )
    columns = {
        attribute.name: rng.integers(0, attribute.size, size=n_rows)
        for attribute in schema
    }
    # Zero weights exercise the positive-group filter; 1.1 / 0.3 make float
    # accumulation order observable (they are not exactly representable).
    weights = rng.choice(
        [0.0, 0.3, 1.0, 1.1, 2.5], size=n_rows, p=[0.15, 0.2, 0.25, 0.2, 0.2]
    )
    return Relation(schema, columns, weights)


def random_predicates(rng: np.random.Generator, schema: Schema, n: int):
    """Random predicates, including out-of-domain literals and IN lists."""
    predicates = []
    for _ in range(n):
        name = str(rng.choice(schema.names))
        domain = schema[name].domain
        values = list(domain.values)
        unknown = "ZZ" if name in STRING_ATTRIBUTES else max(values) + 7
        if rng.random() < 0.3:
            pool = values + [unknown]
            size = int(rng.integers(1, min(3, len(pool)) + 1))
            chosen = [pool[i] for i in rng.choice(len(pool), size=size, replace=False)]
            predicates.append(Predicate(name, Comparison.IN, tuple(chosen)))
            continue
        comparison = pick(
            rng,
            [
                Comparison.EQ,
                Comparison.NE,
                Comparison.LT,
                Comparison.LE,
                Comparison.GT,
                Comparison.GE,
            ],
        )
        value = values[int(rng.integers(len(values)))]
        if rng.random() < 0.25:
            # Literals off the domain grid: EQ/NE miss, ordered comparisons
            # snap to the largest not-exceeding domain position.
            value = unknown if rng.random() < 0.5 else (
                value + 0.25 if name in NUMERIC_ATTRIBUTES else "AB"
            )
        predicates.append(Predicate(name, comparison, value))
    return tuple(predicates)


def candidate_specs(rng: np.random.Generator, n: int):
    """``n`` distinct aggregate specs, each aliased ``a0..``."""
    pool = [
        (AggregateFunction.COUNT, None),
        (AggregateFunction.SUM, "delay"),
        (AggregateFunction.AVG, "delay"),
        (AggregateFunction.SUM, "dist"),
        (AggregateFunction.AVG, "dist"),
    ]
    picks = rng.choice(len(pool), size=n, replace=False)
    return tuple(
        AggregateSpec(pool[pick][0], pool[pick][1], alias=f"a{index}")
        for index, pick in enumerate(picks)
    )


def random_analytic(rng: np.random.Generator, schema: Schema) -> AnalyticQuery:
    """A random table-shaped query over the full pipeline surface."""
    n_group = int(rng.integers(0, 3))
    group_by = tuple(
        str(name) for name in rng.choice(GROUPABLE, size=n_group, replace=False)
    )
    specs = candidate_specs(rng, int(rng.integers(1, 4)))
    aliases = [spec.alias for spec in specs]
    predicates = random_predicates(rng, schema, int(rng.integers(0, 3)))

    having = ()
    windows = []
    if group_by:
        if rng.random() < 0.5:
            having = tuple(
                HavingPredicate(
                    pick(rng, aliases),
                    pick(rng, [Comparison.GT, Comparison.GE, Comparison.LT, Comparison.LE]),
                    float(pick(rng, [0.5, 1.0, 2.0, 4.0, 8.0])),
                )
                for _ in range(int(rng.integers(1, 3)))
            )
        for index in range(int(rng.integers(0, 3))):
            partition = tuple(
                str(name)
                for name in rng.choice(
                    group_by, size=int(rng.integers(0, len(group_by) + 1)), replace=False
                )
            )
            targets = list(group_by) + aliases
            order = tuple(
                OrderKey(pick(rng, targets), descending=bool(rng.random() < 0.5))
                for _ in range(int(rng.integers(1, 3)))
            )
            if rng.random() < 0.5:
                windows.append(
                    WindowSpec(
                        WindowFunction.RANK,
                        alias=f"w{index}",
                        partition_by=partition,
                        order_by=order,
                    )
                )
            else:
                windows.append(
                    WindowSpec(
                        WindowFunction.SUM,
                        alias=f"w{index}",
                        target=pick(rng, aliases),
                        partition_by=partition,
                        order_by=order if rng.random() < 0.7 else (),
                    )
                )

    sortable = list(group_by) + aliases + [window.alias for window in windows]
    order_by = tuple(
        OrderKey(str(name), descending=bool(rng.random() < 0.5))
        for name in rng.choice(
            sortable,
            size=min(len(sortable), int(rng.integers(0, 3))),
            replace=False,
        )
    )
    limit = int(rng.integers(1, 6)) if rng.random() < 0.4 else None
    return AnalyticQuery(
        group_by=group_by,
        aggregates=specs,
        predicates=predicates,
        having=having,
        windows=tuple(windows),
        order_by=order_by,
        limit=limit,
    )


def random_query(rng: np.random.Generator, schema: Schema):
    """One random query across every supported shape."""
    roll = rng.random()
    if roll < 0.1:
        names = rng.choice(schema.names, size=int(rng.integers(1, 3)), replace=False)
        return PointQuery(
            {
                str(name): schema[str(name)].domain.values[
                    int(rng.integers(schema[str(name)].size))
                ]
                for name in names
            }
        )
    if roll < 0.25:
        spec = candidate_specs(rng, 1)[0]
        return ScalarAggregateQuery(
            aggregate=AggregateSpec(spec.function, spec.attribute),
            predicates=random_predicates(rng, schema, int(rng.integers(0, 3))),
        )
    if roll < 0.45:
        n_group = int(rng.integers(1, 3))
        spec = candidate_specs(rng, 1)[0]
        return GroupByQuery(
            tuple(str(n) for n in rng.choice(GROUPABLE, size=n_group, replace=False)),
            aggregate=AggregateSpec(spec.function, spec.attribute),
            predicates=random_predicates(rng, schema, int(rng.integers(0, 3))),
        )
    return random_analytic(rng, schema)


# ---------------------------------------------------------------------------
# SQL rendering (exercises the parser path on renderable queries)
# ---------------------------------------------------------------------------
def _literal(value) -> str:
    return f"'{value}'" if isinstance(value, str) else repr(value)


def _expression(spec) -> str:
    """``FUNC(attr)`` with only the function upper-cased (idents are case-sensitive)."""
    return f"{spec.function.value.upper()}({spec.attribute or '*'})"


def _render_predicates(predicates) -> str:
    if not predicates:
        return ""
    parts = []
    for predicate in predicates:
        if predicate.comparison is Comparison.IN:
            values = ", ".join(_literal(v) for v in predicate.value)
            parts.append(f"{predicate.attribute} IN ({values})")
        else:
            parts.append(
                f"{predicate.attribute} {predicate.comparison.value} "
                f"{_literal(predicate.value)}"
            )
    return " WHERE " + " AND ".join(parts)


def _render_order(keys) -> str:
    return ", ".join(
        f"{key.target} DESC" if key.descending else key.target for key in keys
    )


def render_sql(query) -> str | None:
    """Render a query back to SQL text, or None when not renderable.

    Analytic queries are only rendered when the parser's richness test
    keeps them table-shaped; otherwise the text would parse to a legacy
    AST with a different result shape.
    """
    if isinstance(query, PointQuery):
        where = _render_predicates(
            [Predicate(name, Comparison.EQ, value) for name, value in query.assignment]
        )
        return f"SELECT COUNT(*) FROM t{where}"
    if isinstance(query, ScalarAggregateQuery):
        where = _render_predicates(query.predicates)
        return f"SELECT {_expression(query.aggregate)} FROM t{where}"
    if isinstance(query, GroupByQuery):
        columns = ", ".join(query.group_by)
        where = _render_predicates(query.predicates)
        group = ", ".join(query.group_by)
        return (
            f"SELECT {columns}, {_expression(query.aggregate)} FROM t"
            f"{where} GROUP BY {group}"
        )
    if not isinstance(query, AnalyticQuery):
        return None
    rich = (
        len(query.aggregates) > 1
        or query.having
        or query.order_by
        or query.limit is not None
        or query.windows
        or (query.group_by and any(spec.alias for spec in query.aggregates))
    )
    if not rich:
        return None
    items = list(query.group_by)
    for spec in query.aggregates:
        alias = f" AS {spec.alias}" if spec.alias else ""
        items.append(f"{_expression(spec)}{alias}")
    for window in query.windows:
        over = []
        if window.partition_by:
            over.append("PARTITION BY " + ", ".join(window.partition_by))
        if window.order_by:
            over.append("ORDER BY " + _render_order(window.order_by))
        head = "RANK()" if window.function is WindowFunction.RANK else f"SUM({window.target})"
        items.append(f"{head} OVER ({' '.join(over)}) AS {window.alias}")
    sql = f"SELECT {', '.join(items)} FROM t"
    sql += _render_predicates(query.predicates)
    if query.group_by:
        sql += " GROUP BY " + ", ".join(query.group_by)
    if query.having:
        sql += " HAVING " + " AND ".join(
            f"{condition.target} {condition.comparison.value} {_literal(condition.value)}"
            for condition in query.having
        )
    if query.order_by:
        sql += " ORDER BY " + _render_order(query.order_by)
    if query.limit is not None:
        sql += f" LIMIT {query.limit}"
    return sql


# ---------------------------------------------------------------------------
# The differential sweep
# ---------------------------------------------------------------------------
def _check_relation(seed: int, n_queries: int) -> None:
    rng = np.random.default_rng(seed)
    relation = build_random_relation(rng)
    queries = [random_query(rng, relation.schema) for _ in range(n_queries)]
    oracle = ReferenceEngine(relation)
    engine = WeightedQueryEngine(relation)
    expected = [oracle.execute(query) for query in queries]

    for query, want in zip(queries, expected):
        got = engine.execute(query)
        assert got == want, (
            f"seed={seed}: per-plan mismatch for {query!r}:\n{got!r}\n!=\n{want!r}"
        )
        sql = render_sql(query)
        if sql is not None:
            via_sql = engine.execute(sql)
            assert via_sql == want, (
                f"seed={seed}: SQL-path mismatch for {sql!r}:\n{via_sql!r}\n!=\n{want!r}"
            )

    for optimize in (False, True):
        answers = engine.execute_batch(queries, optimize=optimize)
        for index, (got, want) in enumerate(zip(answers, expected)):
            assert got == want, (
                f"seed={seed}: batch(optimize={optimize}) mismatch at #{index} "
                f"for {queries[index]!r}:\n{got!r}\n!=\n{want!r}"
            )


def test_differential_sweep():
    """Random queries agree exactly across oracle, per-plan, and batch paths."""
    n_relations = max(1, SWEEP // QUERIES_PER_RELATION)
    for case in range(n_relations):
        _check_relation(seed=90_000 + case, n_queries=QUERIES_PER_RELATION)


def test_differential_rich_pipeline_heavy():
    """A dedicated sweep of analytic-only queries (pipeline-heavy shapes)."""
    rng = np.random.default_rng(77_001)
    relation = build_random_relation(rng)
    oracle = ReferenceEngine(relation)
    engine = WeightedQueryEngine(relation)
    queries = [random_analytic(rng, relation.schema) for _ in range(max(8, SWEEP // 5))]
    expected = [oracle.execute(query) for query in queries]
    for query, want in zip(queries, expected):
        got = engine.execute(query)
        assert got == want, f"seed=77001: {query!r}:\n{got!r}\n!=\n{want!r}"
    optimized = engine.execute_batch(queries, optimize=True)
    for index, (got, want) in enumerate(zip(optimized, expected)):
        assert got == want, (
            f"seed=77001: optimized batch mismatch at #{index} for "
            f"{queries[index]!r}:\n{got!r}\n!=\n{want!r}"
        )


def test_differential_survives_refit():
    """The oracle agreement holds on a fitted model's weighted sample — and
    still holds after ``refit()`` changes every weight."""
    themis = build_fitted_themis()
    population = build_correlated_population()
    queries = [
        AnalyticQuery(
            group_by=("A",),
            aggregates=(
                AggregateSpec(AggregateFunction.COUNT, alias="n"),
                AggregateSpec(AggregateFunction.AVG, "B", alias="mean_b"),
            ),
            having=(HavingPredicate("n", Comparison.GT, 1.0),),
            windows=(
                WindowSpec(
                    WindowFunction.RANK,
                    alias="r",
                    order_by=(OrderKey("n", descending=True),),
                ),
                WindowSpec(WindowFunction.SUM, alias="running", target="n", order_by=(OrderKey("A"),)),
            ),
            order_by=(OrderKey("r"), OrderKey("A")),
        ),
        AnalyticQuery(
            group_by=("A", "B"),
            aggregates=(
                AggregateSpec(AggregateFunction.COUNT, alias="n"),
                AggregateSpec(AggregateFunction.SUM, "C", alias="total_c"),
            ),
            predicates=(Predicate("C", Comparison.LE, 1),),
            order_by=(OrderKey("n", descending=True),),
            limit=4,
        ),
        GroupByQuery(("A",), predicates=(Predicate("B", Comparison.NE, 0),)),
        ScalarAggregateQuery(
            aggregate=AggregateSpec(AggregateFunction.AVG, "B"),
            predicates=(Predicate("A", Comparison.GE, 1),),
        ),
    ]

    def check(model, label):
        weighted = model.weighted_sample
        oracle = ReferenceEngine(weighted)
        engine = model.sample_evaluator.engine
        expected = [oracle.execute(query) for query in queries]
        for query, want in zip(queries, expected):
            got = engine.execute(query)
            assert got == want, f"{label}: {query!r}:\n{got!r}\n!=\n{want!r}"
        optimized = engine.execute_batch(queries, optimize=True)
        assert optimized == expected, f"{label}: optimized batch diverged"
        return weighted.weights.copy()

    before = check(themis.model, "pre-refit")
    themis.add_aggregate(AggregateQuery.from_relation(population, ["A", "C"]))
    model = themis.refit()
    after = check(model, "post-refit")
    assert not np.array_equal(before, after), "refit should change the weights"
