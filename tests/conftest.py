"""Shared fixtures: the paper's running example and small synthetic datasets."""

from __future__ import annotations

import pytest

from repro.aggregates import AggregateQuery, AggregateSet
from repro.core import Themis
from repro.schema import Attribute, Domain, Relation, Schema
from worlds import (
    build_biased_correlated_sample,
    build_correlated_aggregates,
    build_correlated_population,
    build_fitted_themis,
    build_sparse_fitted_themis,
)


@pytest.fixture
def paper_schema() -> Schema:
    """The schema of Example 3.1: date, origin state, destination state."""
    return Schema(
        [
            Attribute("date", Domain(["01", "02"])),
            Attribute("o_st", Domain(["FL", "NC", "NY"])),
            Attribute("d_st", Domain(["FL", "NC", "NY"])),
        ]
    )


@pytest.fixture
def paper_population(paper_schema) -> Relation:
    """The ten-tuple population P of Example 3.1."""
    rows = [
        ("01", "FL", "FL"),
        ("01", "FL", "FL"),
        ("02", "FL", "NY"),
        ("01", "NC", "FL"),
        ("02", "NC", "NY"),
        ("02", "NC", "NY"),
        ("02", "NC", "NY"),
        ("01", "NY", "FL"),
        ("01", "NY", "NC"),
        ("02", "NY", "NY"),
    ]
    return Relation.from_rows(paper_schema, rows)


@pytest.fixture
def paper_sample(paper_schema) -> Relation:
    """The four-tuple sample S of Example 3.1."""
    rows = [
        ("01", "FL", "FL"),
        ("01", "FL", "FL"),
        ("02", "NC", "NY"),
        ("01", "NY", "NC"),
    ]
    return Relation.from_rows(paper_schema, rows)


@pytest.fixture
def paper_aggregates(paper_population) -> AggregateSet:
    """Γ = {Γ1 over date, Γ2 over (o_st, d_st)} of Example 3.1."""
    return AggregateSet(
        [
            AggregateQuery.from_relation(paper_population, ["date"]),
            AggregateQuery.from_relation(paper_population, ["o_st", "d_st"]),
        ]
    )


@pytest.fixture
def correlated_population() -> Relation:
    """A 3-attribute correlated population used by BN and reweighting tests."""
    return build_correlated_population()


@pytest.fixture
def biased_correlated_sample(correlated_population) -> Relation:
    """A sample of the correlated population heavily biased towards A = 0."""
    return build_biased_correlated_sample(correlated_population)


@pytest.fixture
def correlated_aggregates(correlated_population) -> AggregateSet:
    """1D and 2D aggregates over the correlated population."""
    return build_correlated_aggregates(correlated_population)


@pytest.fixture(scope="session")
def serving_themis() -> Themis:
    """A fitted facade shared (read-only) by the serving-layer tests."""
    return build_fitted_themis()


@pytest.fixture(scope="session")
def sparse_serving_themis() -> Themis:
    """A fitted facade whose sample misses many tuples (read-only, BN-heavy)."""
    return build_sparse_fitted_themis()


@pytest.fixture
def fresh_serving_themis() -> Themis:
    """A fitted facade serving tests may mutate (refit, new aggregates)."""
    return build_fitted_themis()
