"""Shared fixtures: the paper's running example and small synthetic datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregates import AggregateQuery, AggregateSet
from repro.core import Themis, ThemisConfig
from repro.schema import Attribute, Domain, Relation, Schema


@pytest.fixture
def paper_schema() -> Schema:
    """The schema of Example 3.1: date, origin state, destination state."""
    return Schema(
        [
            Attribute("date", Domain(["01", "02"])),
            Attribute("o_st", Domain(["FL", "NC", "NY"])),
            Attribute("d_st", Domain(["FL", "NC", "NY"])),
        ]
    )


@pytest.fixture
def paper_population(paper_schema) -> Relation:
    """The ten-tuple population P of Example 3.1."""
    rows = [
        ("01", "FL", "FL"),
        ("01", "FL", "FL"),
        ("02", "FL", "NY"),
        ("01", "NC", "FL"),
        ("02", "NC", "NY"),
        ("02", "NC", "NY"),
        ("02", "NC", "NY"),
        ("01", "NY", "FL"),
        ("01", "NY", "NC"),
        ("02", "NY", "NY"),
    ]
    return Relation.from_rows(paper_schema, rows)


@pytest.fixture
def paper_sample(paper_schema) -> Relation:
    """The four-tuple sample S of Example 3.1."""
    rows = [
        ("01", "FL", "FL"),
        ("01", "FL", "FL"),
        ("02", "NC", "NY"),
        ("01", "NY", "NC"),
    ]
    return Relation.from_rows(paper_schema, rows)


@pytest.fixture
def paper_aggregates(paper_population) -> AggregateSet:
    """Γ = {Γ1 over date, Γ2 over (o_st, d_st)} of Example 3.1."""
    return AggregateSet(
        [
            AggregateQuery.from_relation(paper_population, ["date"]),
            AggregateQuery.from_relation(paper_population, ["o_st", "d_st"]),
        ]
    )


def build_correlated_population() -> Relation:
    """The deterministic 3-attribute correlated population (builder form)."""
    rng = np.random.default_rng(123)
    n = 4000
    a = rng.choice(3, size=n, p=[0.6, 0.3, 0.1])
    b_table = np.array([[0.7, 0.2, 0.1], [0.2, 0.6, 0.2], [0.1, 0.3, 0.6]])
    b = np.array([rng.choice(3, p=b_table[value]) for value in a])
    c_table = np.array([[0.9, 0.1], [0.5, 0.5], [0.2, 0.8]])
    c = np.array([rng.choice(2, p=c_table[value]) for value in b])
    schema = Schema(
        [
            Attribute("A", Domain([0, 1, 2])),
            Attribute("B", Domain([0, 1, 2])),
            Attribute("C", Domain([0, 1])),
        ]
    )
    return Relation(schema, {"A": a, "B": b, "C": c})


def build_biased_correlated_sample(population: Relation) -> Relation:
    """The deterministic biased sample of the correlated population."""
    rng = np.random.default_rng(7)
    a = population.column("A")
    eligible = np.where((a == 0) | (rng.random(population.n_rows) < 0.1))[0]
    chosen = rng.choice(eligible, size=600, replace=False)
    return population.take(np.sort(chosen))


def build_correlated_aggregates(population: Relation) -> AggregateSet:
    """The 1D and 2D aggregate set of the correlated population."""
    return AggregateSet(
        [
            AggregateQuery.from_relation(population, ["A"]),
            AggregateQuery.from_relation(population, ["A", "B"]),
            AggregateQuery.from_relation(population, ["B", "C"]),
        ]
    )


def build_fitted_themis() -> Themis:
    """A small fitted Themis over the correlated population's biased sample."""
    population = build_correlated_population()
    themis = Themis(
        ThemisConfig(
            seed=1,
            ipf_max_iterations=40,
            n_generated_samples=3,
            generated_sample_size=400,
        )
    )
    themis.load_sample(build_biased_correlated_sample(population))
    themis.add_aggregates(build_correlated_aggregates(population))
    themis.fit()
    return themis


@pytest.fixture
def correlated_population() -> Relation:
    """A 3-attribute correlated population used by BN and reweighting tests."""
    return build_correlated_population()


@pytest.fixture
def biased_correlated_sample(correlated_population) -> Relation:
    """A sample of the correlated population heavily biased towards A = 0."""
    return build_biased_correlated_sample(correlated_population)


@pytest.fixture
def correlated_aggregates(correlated_population) -> AggregateSet:
    """1D and 2D aggregates over the correlated population."""
    return build_correlated_aggregates(correlated_population)


def build_sparse_fitted_themis() -> Themis:
    """A facade fitted on a very sparse sample, so many tuples route to the BN."""
    population = build_correlated_population()
    themis = Themis(
        ThemisConfig(
            seed=3,
            ipf_max_iterations=20,
            n_generated_samples=2,
            generated_sample_size=200,
        )
    )
    themis.load_sample(build_biased_correlated_sample(population).take(np.arange(30)))
    themis.add_aggregates(build_correlated_aggregates(population))
    themis.fit()
    return themis


@pytest.fixture(scope="session")
def serving_themis() -> Themis:
    """A fitted facade shared (read-only) by the serving-layer tests."""
    return build_fitted_themis()


@pytest.fixture(scope="session")
def sparse_serving_themis() -> Themis:
    """A fitted facade whose sample misses many tuples (read-only, BN-heavy)."""
    return build_sparse_fitted_themis()


@pytest.fixture
def fresh_serving_themis() -> Themis:
    """A fitted facade serving tests may mutate (refit, new aggregates)."""
    return build_fitted_themis()
