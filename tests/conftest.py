"""Shared fixtures: the paper's running example and small synthetic datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregates import AggregateQuery, AggregateSet
from repro.schema import Attribute, Domain, Relation, Schema


@pytest.fixture
def paper_schema() -> Schema:
    """The schema of Example 3.1: date, origin state, destination state."""
    return Schema(
        [
            Attribute("date", Domain(["01", "02"])),
            Attribute("o_st", Domain(["FL", "NC", "NY"])),
            Attribute("d_st", Domain(["FL", "NC", "NY"])),
        ]
    )


@pytest.fixture
def paper_population(paper_schema) -> Relation:
    """The ten-tuple population P of Example 3.1."""
    rows = [
        ("01", "FL", "FL"),
        ("01", "FL", "FL"),
        ("02", "FL", "NY"),
        ("01", "NC", "FL"),
        ("02", "NC", "NY"),
        ("02", "NC", "NY"),
        ("02", "NC", "NY"),
        ("01", "NY", "FL"),
        ("01", "NY", "NC"),
        ("02", "NY", "NY"),
    ]
    return Relation.from_rows(paper_schema, rows)


@pytest.fixture
def paper_sample(paper_schema) -> Relation:
    """The four-tuple sample S of Example 3.1."""
    rows = [
        ("01", "FL", "FL"),
        ("01", "FL", "FL"),
        ("02", "NC", "NY"),
        ("01", "NY", "NC"),
    ]
    return Relation.from_rows(paper_schema, rows)


@pytest.fixture
def paper_aggregates(paper_population) -> AggregateSet:
    """Γ = {Γ1 over date, Γ2 over (o_st, d_st)} of Example 3.1."""
    return AggregateSet(
        [
            AggregateQuery.from_relation(paper_population, ["date"]),
            AggregateQuery.from_relation(paper_population, ["o_st", "d_st"]),
        ]
    )


@pytest.fixture
def correlated_population() -> Relation:
    """A 3-attribute correlated population used by BN and reweighting tests."""
    rng = np.random.default_rng(123)
    n = 4000
    a = rng.choice(3, size=n, p=[0.6, 0.3, 0.1])
    b_table = np.array([[0.7, 0.2, 0.1], [0.2, 0.6, 0.2], [0.1, 0.3, 0.6]])
    b = np.array([rng.choice(3, p=b_table[value]) for value in a])
    c_table = np.array([[0.9, 0.1], [0.5, 0.5], [0.2, 0.8]])
    c = np.array([rng.choice(2, p=c_table[value]) for value in b])
    schema = Schema(
        [
            Attribute("A", Domain([0, 1, 2])),
            Attribute("B", Domain([0, 1, 2])),
            Attribute("C", Domain([0, 1])),
        ]
    )
    return Relation(schema, {"A": a, "B": b, "C": c})


@pytest.fixture
def biased_correlated_sample(correlated_population) -> Relation:
    """A sample of the correlated population heavily biased towards A = 0."""
    rng = np.random.default_rng(7)
    a = correlated_population.column("A")
    eligible = np.where((a == 0) | (rng.random(correlated_population.n_rows) < 0.1))[0]
    chosen = rng.choice(eligible, size=600, replace=False)
    return correlated_population.take(np.sort(chosen))


@pytest.fixture
def correlated_aggregates(correlated_population) -> AggregateSet:
    """1D and 2D aggregates over the correlated population."""
    return AggregateSet(
        [
            AggregateQuery.from_relation(correlated_population, ["A"]),
            AggregateQuery.from_relation(correlated_population, ["A", "B"]),
            AggregateQuery.from_relation(correlated_population, ["B", "C"]),
        ]
    )
