"""Tests for the batch-aware plan optimizer.

The load-bearing guarantee: the optimizer's rewrites — dedup, predicate
normalization and pushdown, shared masks, multi-query group-by fusion — are
**bit-identical** to per-plan execution at every layer (columnar executor,
evaluators, serving batches), while the rewrite counters prove the rewrites
actually fire.  Every equality below is exact (``==``), never a tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.plan import (
    ColumnarExecutor,
    OptimizerStats,
    PlanCompiler,
    normalize_plan,
    normalize_predicates,
    optimize_batch,
)
from repro.plan.optimize import UNIT_GROUP_BY, UNIT_SCALAR
from repro.query import (
    AggregateFunction,
    AggregateSpec,
    Comparison,
    GroupByQuery,
    PointQuery,
    Predicate,
    ScalarAggregateQuery,
)
from repro.query.workload import MixedQueryWorkload
from repro.schema import Attribute, Domain, Relation, Schema
from repro.serving.cache import LRUCache, ResultCache


def build_relation(n_rows: int = 3000, seed: int = 11) -> Relation:
    rng = np.random.default_rng(seed)
    sizes = {"a": 8, "b": 6, "c": 5, "d": 4, "e": 3}
    schema = Schema(
        [Attribute(name, Domain(list(range(size)))) for name, size in sizes.items()]
    )
    columns = {
        name: rng.integers(0, size, size=n_rows, dtype=np.int64)
        for name, size in sizes.items()
    }
    weights = rng.uniform(0.1, 5.0, size=n_rows)
    return Relation(schema, columns, weights)


@pytest.fixture(scope="module")
def relation() -> Relation:
    return build_relation()


@pytest.fixture(scope="module")
def compiler(relation) -> PlanCompiler:
    return PlanCompiler(relation.schema)


def canonical(compiler, *predicates):
    return tuple(compiler.canonical_predicate(p) for p in predicates)


class TestNormalizePredicates:
    def test_duplicates_and_reorderings_share_one_normal_form(self, compiler):
        forward = canonical(
            compiler,
            Predicate("a", Comparison.EQ, 3),
            Predicate("b", Comparison.LE, 4),
        )
        backward = canonical(
            compiler,
            Predicate("b", Comparison.LE, 4),
            Predicate("a", Comparison.EQ, 3),
            Predicate("a", Comparison.EQ, 3),  # duplicate conjunct
        )
        assert normalize_predicates(forward) == normalize_predicates(backward)

    def test_tautological_conjunct_is_dropped(self, compiler):
        base = canonical(compiler, Predicate("a", Comparison.EQ, 3))
        padded = canonical(
            compiler,
            Predicate("a", Comparison.EQ, 3),
            Predicate("b", Comparison.GE, -100),  # below the domain: always true
            Predicate("c", Comparison.NE, 99),  # out of domain: always true
        )
        assert normalize_predicates(padded) == normalize_predicates(base)

    def test_unsatisfiable_conjunct_absorbs_the_conjunction(self, compiler):
        predicates = canonical(
            compiler,
            Predicate("a", Comparison.EQ, 3),
            Predicate("b", Comparison.EQ, 99),  # out of domain: always false
        )
        normalized = normalize_predicates(predicates)
        assert len(normalized) == 1
        assert normalized[0].attribute == "b"

    def test_redundant_ordered_bounds_are_tightened(self, compiler):
        loose = canonical(
            compiler,
            Predicate("a", Comparison.LE, 3),
            Predicate("a", Comparison.LE, 6),
            Predicate("b", Comparison.GE, 1),
            Predicate("b", Comparison.GE, 3),
        )
        tight = canonical(
            compiler,
            Predicate("a", Comparison.LE, 3),
            Predicate("b", Comparison.GE, 3),
        )
        assert normalize_predicates(loose) == normalize_predicates(tight)

    def test_mixed_strict_and_inclusive_bounds_compare_on_codes(self, compiler):
        # a < 4 admits codes {0..3}; a <= 5 admits {0..5}: the strict bound
        # is tighter and must be the survivor.
        mixed = canonical(
            compiler,
            Predicate("a", Comparison.LT, 4),
            Predicate("a", Comparison.LE, 5),
        )
        normalized = normalize_predicates(mixed)
        assert len(normalized) == 1
        assert normalized[0].comparison is Comparison.LT

    def test_equality_implies_ordered_bounds(self, compiler):
        padded = canonical(
            compiler,
            Predicate("a", Comparison.EQ, 3),
            Predicate("a", Comparison.LE, 6),
            Predicate("a", Comparison.GE, 0),
        )
        base = canonical(compiler, Predicate("a", Comparison.EQ, 3))
        assert normalize_predicates(padded) == normalize_predicates(base)

    def test_equality_violating_a_bound_keeps_both(self, compiler):
        # a = 5 AND a <= 2 matches nothing; normalization must not "repair"
        # the contradiction by dropping the bound.
        contradiction = canonical(
            compiler,
            Predicate("a", Comparison.EQ, 5),
            Predicate("a", Comparison.LE, 2),
        )
        assert len(normalize_predicates(contradiction)) == 2

    def test_normalization_preserves_the_conjunction_mask(self, relation, compiler):
        cases = [
            (Predicate("a", Comparison.LE, 3), Predicate("a", Comparison.LE, 6)),
            (Predicate("a", Comparison.EQ, 3), Predicate("a", Comparison.GE, 0)),
            (Predicate("b", Comparison.EQ, 2), Predicate("c", Comparison.NE, 99)),
            (Predicate("a", Comparison.EQ, 5), Predicate("a", Comparison.LE, 2)),
            (Predicate("d", Comparison.EQ, 1), Predicate("e", Comparison.EQ, 99)),
        ]
        executor = ColumnarExecutor(relation, compiler=compiler)
        for case in cases:
            raw = canonical(compiler, *case)
            normalized = normalize_predicates(raw)
            raw_mask = executor.mask_cache.conjunction_mask(raw)
            norm_mask = executor.mask_cache.conjunction_mask(normalized)
            assert np.array_equal(raw_mask, norm_mask)


class TestNormalizePlan:
    def test_normalized_plan_keeps_the_canonical_key(self, compiler):
        query = ScalarAggregateQuery(
            predicates=(
                Predicate("a", Comparison.LE, 3),
                Predicate("a", Comparison.LE, 6),
            )
        )
        plan = compiler.compile(query)
        stats = OptimizerStats()
        normalized = normalize_plan(plan, stats)
        assert normalized.key == plan.key
        assert stats.predicates_pushed_down == 1
        assert len(normalized.predicates) == 1
        assert plan.query is normalized.query

    def test_already_normal_plan_is_returned_unchanged(self, compiler):
        plan = compiler.compile(
            GroupByQuery(("a",), predicates=(Predicate("b", Comparison.EQ, 2),))
        )
        assert normalize_plan(plan) is plan


class TestOptimizeBatch:
    def test_exact_duplicates_share_a_slot(self, compiler):
        query = GroupByQuery(("a",), predicates=(Predicate("b", Comparison.EQ, 2),))
        schedule = optimize_batch([compiler.compile(query)] * 3)
        assert len(schedule.slots) == 1
        assert schedule.assignments == [0, 0, 0]
        assert schedule.stats.plans_deduped == 2

    def test_redundant_conjunct_variants_dedup_across_distinct_keys(self, compiler):
        base = ScalarAggregateQuery(predicates=(Predicate("a", Comparison.LE, 3),))
        padded = ScalarAggregateQuery(
            predicates=(
                Predicate("a", Comparison.LE, 3),
                Predicate("a", Comparison.LE, 6),
            )
        )
        plans = [compiler.compile(base), compiler.compile(padded)]
        assert plans[0].key != plans[1].key  # distinct cache identities...
        schedule = optimize_batch(plans)
        assert len(schedule.slots) == 1  # ...one execution
        assert schedule.stats.plans_deduped == 1
        assert schedule.stats.predicates_pushed_down == 1

    def test_point_and_count_scalar_fuse_into_one_reduction(self, compiler):
        point = compiler.compile(PointQuery({"a": 3, "b": 2}))
        scalar = compiler.compile(
            ScalarAggregateQuery(
                predicates=(
                    Predicate("a", Comparison.EQ, 3),
                    Predicate("b", Comparison.EQ, 2),
                )
            )
        )
        schedule = optimize_batch([point, scalar])
        assert len(schedule.slots) == 1
        assert schedule.units[0].kind == UNIT_SCALAR

    def test_shared_prefix_aggregates_fuse_into_one_unit(self, compiler):
        predicates = (Predicate("c", Comparison.LE, 2),)
        family = [
            GroupByQuery(("a", "b"), predicates=predicates),
            GroupByQuery(
                ("a", "b"),
                aggregate=AggregateSpec(AggregateFunction.SUM, "d"),
                predicates=predicates,
            ),
            GroupByQuery(
                ("a", "b"),
                aggregate=AggregateSpec(AggregateFunction.AVG, "d"),
                predicates=predicates,
            ),
        ]
        other = GroupByQuery(("e",), predicates=predicates)
        scalar = ScalarAggregateQuery(predicates=predicates)
        plans = [compiler.compile(q) for q in family + [other, scalar]]
        schedule = optimize_batch(plans)
        kinds = [unit.kind for unit in schedule.units]
        assert kinds.count(UNIT_GROUP_BY) == 2  # the (a, b) family plus `other`
        assert kinds.count(UNIT_SCALAR) == 1
        fused = next(u for u in schedule.units if len(u.slots) == 3)
        assert fused.group_keys == ("a", "b")
        assert schedule.stats.groupby_fusions == 2
        # All five slots evaluate the same normalized filter; the shared
        # mask stage computes it once — four evaluations avoided.
        assert schedule.stats.masks_shared == 4


class TestColumnarBitIdentity:
    def _assert_batches_match(self, relation, queries):
        reference_executor = ColumnarExecutor(relation)
        reference = [reference_executor.execute(query) for query in queries]
        executor = ColumnarExecutor(relation)
        stats = OptimizerStats()
        optimized = executor.execute_batch(queries, optimize=True, stats=stats)
        unoptimized = ColumnarExecutor(relation).execute_batch(
            queries, optimize=False
        )
        assert optimized == reference
        assert unoptimized == reference
        return stats

    def test_mixed_workload_with_duplicates(self, relation):
        workload = MixedQueryWorkload(relation, seed=3).generate(6, 6, 6)
        queries = [entry.query for entry in workload]
        queries = queries + queries[::3]  # exact duplicates
        stats = self._assert_batches_match(relation, queries)
        assert stats.plans_deduped >= len(workload) // 3

    def test_overlapping_filters_and_disjoint_group_bys(self, relation):
        shared = (Predicate("a", Comparison.LE, 4), Predicate("b", Comparison.EQ, 2))
        queries = [
            # One family over a shared prefix, every aggregate function.
            GroupByQuery(("c", "d"), predicates=shared),
            GroupByQuery(
                ("c", "d"),
                aggregate=AggregateSpec(AggregateFunction.SUM, "e"),
                predicates=shared,
            ),
            GroupByQuery(
                ("c", "d"),
                aggregate=AggregateSpec(AggregateFunction.AVG, "e"),
                predicates=shared,
            ),
            # Overlapping (but not equal) filter over the same prefix.
            GroupByQuery(("c", "d"), predicates=shared[:1]),
            # Disjoint group-by columns, same filter.
            GroupByQuery(("e",), predicates=shared),
            # Reordered + padded variants of the shared filter.
            GroupByQuery(("c", "d"), predicates=shared[::-1]),
            GroupByQuery(
                ("c", "d"),
                predicates=shared + (Predicate("a", Comparison.LE, 6),),
            ),
            # Scalars and points over the same masks.
            ScalarAggregateQuery(predicates=shared),
            ScalarAggregateQuery(
                aggregate=AggregateSpec(AggregateFunction.AVG, "e"),
                predicates=shared,
            ),
            PointQuery({"a": 1, "b": 2}),
            PointQuery({"b": 2, "a": 1}),
        ]
        stats = self._assert_batches_match(relation, queries)
        assert stats.groupby_fusions > 0
        assert stats.plans_deduped > 0
        assert stats.predicates_pushed_down > 0
        assert stats.masks_shared > 0

    def test_unfiltered_and_unsatisfiable_plans(self, relation):
        queries = [
            GroupByQuery(("a",)),
            GroupByQuery(
                ("a",), aggregate=AggregateSpec(AggregateFunction.SUM, "b")
            ),
            ScalarAggregateQuery(),
            ScalarAggregateQuery(predicates=(Predicate("a", Comparison.EQ, 99),)),
            GroupByQuery(("b",), predicates=(Predicate("a", Comparison.EQ, 99),)),
        ]
        self._assert_batches_match(relation, queries)

    def test_optimized_batch_matches_legacy_reference(self, relation):
        """End to end: fused kernels agree with the embedded per-plan loop
        over a workload exercising every fusion path, exactly."""
        workload = MixedQueryWorkload(relation, seed=19).generate(4, 8, 8)
        queries = [entry.query for entry in workload] * 2
        executor = ColumnarExecutor(relation)
        per_plan = [executor.execute(query) for query in queries]
        optimized = executor.execute_batch(queries)
        for left, right in zip(optimized, per_plan):
            assert left == right


class TestServingOptimized:
    WORKLOAD = [
        "SELECT COUNT(*) FROM sample WHERE A = 0",
        "SELECT COUNT(*) FROM sample WHERE A = 0 AND B = 1",
        "SELECT COUNT(*) FROM sample WHERE B = 1 AND A = 0",
        "SELECT A, COUNT(*) FROM sample GROUP BY A",
        "SELECT A, SUM(B) FROM sample GROUP BY A",
        "SELECT A, AVG(B) FROM sample GROUP BY A",
        "SELECT B, COUNT(*) FROM sample WHERE C = 1 GROUP BY B",
        "SELECT B, AVG(A) FROM sample WHERE C = 1 GROUP BY B",
        "SELECT AVG(B) FROM sample WHERE A = 0",
        "SELECT COUNT(*) FROM sample WHERE A = 2 AND B = 2 AND C = 0",
        "SELECT A, COUNT(*) FROM sample GROUP BY A",  # exact duplicate
    ]

    def test_batch_matches_per_plan_session_and_singles(self, serving_themis):
        optimized = serving_themis.serve().execute_batch(self.WORKLOAD)
        per_plan = serving_themis.serve(optimize=False).execute_batch(self.WORKLOAD)
        singles = [serving_themis.query(statement) for statement in self.WORKLOAD]
        for left, right, single in zip(optimized, per_plan, singles):
            assert left.result == right.result
            assert left.result == single

    def test_optimizer_counters_reach_session_statistics(self, serving_themis):
        session = serving_themis.serve()
        batch = session.execute_batch(self.WORKLOAD)
        assert batch.optimizer is not None
        assert batch.optimizer["groupby_fusions"] > 0
        assert batch.optimizer["masks_shared"] > 0
        assert batch.optimized_plans > 0
        stats = session.statistics.as_dict()
        assert stats["plans_optimized"] == batch.optimized_plans
        assert stats["optimizer"]["groupby_fusions"] > 0
        summary = batch.statistics()
        assert summary["optimized_plans"] == batch.optimized_plans
        assert summary["optimizer"]["groupby_fusions"] > 0

    def test_unoptimized_session_reports_no_optimizer(self, serving_themis):
        batch = serving_themis.serve(optimize=False).execute_batch(self.WORKLOAD)
        assert batch.optimizer is None
        assert batch.optimized_plans == 0

    def test_warm_batch_serves_from_the_result_cache(self, serving_themis):
        session = serving_themis.serve()
        session.execute_batch(self.WORKLOAD)
        warm = session.execute_batch(self.WORKLOAD)
        # Deduplicated fan-outs inherit from_result_cache from the first
        # occurrence, so on a warm batch every outcome is a cache hit.
        assert warm.cache_hits == len(self.WORKLOAD)
        assert warm.optimized_plans == 0  # nothing left for the optimizer

    def test_refit_mid_session_keeps_bit_identity(self, fresh_serving_themis):
        session = fresh_serving_themis.serve()
        before = session.execute_batch(self.WORKLOAD)
        assert len(before) == len(self.WORKLOAD)
        fresh_serving_themis.refit()
        after = session.execute_batch(self.WORKLOAD)
        per_plan = fresh_serving_themis.serve(optimize=False).execute_batch(
            self.WORKLOAD
        )
        for left, right in zip(after, per_plan):
            assert left.result == right.result
        assert session.statistics.invalidations == 1

    def test_mixed_workload_batch_matches_singles(self, serving_themis):
        workload = MixedQueryWorkload(
            serving_themis.model.weighted_sample, seed=5
        ).generate(4, 4, 4)
        queries = [entry.query for entry in workload] + [
            entry.sql for entry in workload
        ]
        batch = serving_themis.serve().execute_batch(queries)
        for outcome, query in zip(batch, queries):
            assert outcome.result == serving_themis.query(query)


class TestEvaluatorBatches:
    def test_hybrid_group_by_batch_matches_per_query(self, serving_themis):
        hybrid = serving_themis.model.hybrid_evaluator
        queries = [
            GroupByQuery(("A",)),
            GroupByQuery(("A",), aggregate=AggregateSpec(AggregateFunction.SUM, "B")),
            GroupByQuery(("A", "B"), predicates=(Predicate("C", Comparison.EQ, 1),)),
            GroupByQuery(("B",), predicates=(Predicate("C", Comparison.EQ, 1),)),
        ]
        batched = hybrid.group_by_batch(queries)
        for result, query in zip(batched, queries):
            assert result == hybrid.group_by(query)

    def test_bn_group_by_batch_matches_per_query(self, serving_themis):
        evaluator = serving_themis.model.bayes_net_evaluator
        queries = [
            GroupByQuery(("A",)),
            GroupByQuery(("A",), aggregate=AggregateSpec(AggregateFunction.AVG, "B")),
            GroupByQuery(("B", "C"))]
        batched = evaluator.group_by_batch(queries)
        for result, query in zip(batched, queries):
            assert result == evaluator.group_by(query)

    def test_empty_batches(self, serving_themis):
        assert serving_themis.model.hybrid_evaluator.group_by_batch([]) == []
        assert serving_themis.model.bayes_net_evaluator.group_by_batch([]) == []
        engine = serving_themis.model.sample_evaluator.engine
        assert engine.execute_batch([]) == []


class TestExplainOptimized:
    def test_raw_and_optimized_plans_share_the_canonical_key(self, serving_themis):
        explained = serving_themis.query(
            "SELECT AVG(B) FROM sample WHERE A <= 1 AND A <= 2 AND C = 1",
            explain="optimized",
        )
        assert explained.optimized is not None
        assert explained.optimized.key == explained.plan.key
        assert len(explained.optimized.predicates) < len(explained.plan.predicates)
        assert explained.result == serving_themis.query(
            "SELECT AVG(B) FROM sample WHERE A <= 1 AND A <= 2 AND C = 1"
        )

    def test_plain_explain_has_no_optimized_plan(self, serving_themis):
        explained = serving_themis.query(
            "SELECT COUNT(*) FROM sample WHERE A = 0", explain=True
        )
        assert explained.optimized is None


class TestLRUCachePeek:
    def test_peek_returns_without_touching_statistics(self):
        cache = LRUCache(capacity=4)
        cache.put("x", 41)
        hits, misses = cache.statistics.hits, cache.statistics.misses
        assert cache.peek("x") == 41
        assert cache.peek("missing") is None
        assert cache.peek("missing", "default") == "default"
        assert (cache.statistics.hits, cache.statistics.misses) == (hits, misses)

    def test_peek_does_not_promote_the_entry(self):
        cache = LRUCache(capacity=2)
        cache.put("old", 1)
        cache.put("new", 2)
        # A get() would promote "old" and evict "new"; peek must not.
        assert cache.peek("old") == 1
        cache.put("evictor", 3)
        assert "old" not in cache
        assert "new" in cache

    def test_contains_goes_through_peek(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        before = cache.statistics.as_dict()
        assert "a" in cache
        assert "b" not in cache
        assert cache.statistics.as_dict() == before

    def test_result_cache_peek_is_stat_free(self):
        cache = ResultCache(capacity=4)
        cache.store(("k",), 0.0)
        before = cache.statistics.as_dict()
        assert cache.peek(("k",)) == 0.0
        assert cache.peek(("missing",)) is None
        assert cache.statistics.as_dict() == before
        # The counted path still counts.
        assert cache.lookup(("k",)) == 0.0
        assert cache.statistics.hits == before["hits"] + 1
