"""Tests for the unified logical-plan IR and its vectorized columnar kernels.

The heart of this file is bit-identity: the historical filter-then-reduce
engine is embedded verbatim as ``LegacyWeightedQueryEngine`` and every query
shape (point, scalar, group-by, join-group-by) must produce *exactly* the
same floats through the compiled-plan columnar kernels, on every workload.
The remaining classes cover the compiler round-trip (SQL text -> AST ->
plan -> canonical key), the predicate-mask cache, routing identity with the
hybrid evaluator, the explain hook, and the batched BN aggregate lowering.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesnet import ExactInference
from repro.core import OpenWorldEvaluator
from repro.exceptions import QueryError
from repro.plan import (
    ROUTE_BAYES_NET,
    ROUTE_HYBRID,
    ROUTE_SAMPLE,
    ColumnarExecutor,
    MaskCache,
    PlanCompiler,
    resolve_route,
)
from repro.query import (
    AggregateFunction,
    AggregateSpec,
    Comparison,
    GroupByQuery,
    JoinGroupByQuery,
    MixedQueryWorkload,
    PointQuery,
    Predicate,
    ScalarAggregateQuery,
)
from repro.query.workload import PointQueryWorkload
from repro.schema import Attribute, Domain, Relation, Schema
from repro.serving.planner import QueryPlanner
from repro.sql.engine import QueryResult, WeightedQueryEngine
from repro.sql.parser import parse_sql


def build_correlated_population() -> Relation:
    """The same deterministic 3-attribute correlated population the shared
    conftest builds (duplicated here so the module imports standalone from
    any pytest rootdir)."""
    rng = np.random.default_rng(123)
    n = 4000
    a = rng.choice(3, size=n, p=[0.6, 0.3, 0.1])
    b_table = np.array([[0.7, 0.2, 0.1], [0.2, 0.6, 0.2], [0.1, 0.3, 0.6]])
    b = np.array([rng.choice(3, p=b_table[value]) for value in a])
    c_table = np.array([[0.9, 0.1], [0.5, 0.5], [0.2, 0.8]])
    c = np.array([rng.choice(2, p=c_table[value]) for value in b])
    schema = Schema(
        [
            Attribute("A", Domain([0, 1, 2])),
            Attribute("B", Domain([0, 1, 2])),
            Attribute("C", Domain([0, 1])),
        ]
    )
    return Relation(schema, {"A": a, "B": b, "C": c})


# ----------------------------------------------------------------------
# The pre-refactor engine, embedded verbatim as the bit-identity reference.
# ----------------------------------------------------------------------
class LegacyWeightedQueryEngine:
    """The historical filter-then-reduce engine (pre-plan-IR), kept as the
    reference implementation the columnar kernels must match bit for bit."""

    def __init__(self, relation: Relation):
        self._relation = relation

    def point(self, assignment) -> float:
        if not assignment:
            raise QueryError("a point query needs at least one attribute-value pair")
        mask = self._relation.mask_equal(assignment)
        return float(self._relation.weights[mask].sum())

    def scalar(self, query: ScalarAggregateQuery) -> float:
        relation = self._apply_predicates(self._relation, query.predicates)
        weights = relation.weights
        function = query.aggregate.function
        if function is AggregateFunction.COUNT:
            return float(weights.sum())
        measure = self._numeric_column(relation, query.aggregate.attribute)
        if function is AggregateFunction.SUM:
            return float(np.sum(weights * measure))
        total = weights.sum()
        return float(np.sum(weights * measure) / total) if total > 0 else 0.0

    def group_by(self, query: GroupByQuery) -> QueryResult:
        relation = self._apply_predicates(self._relation, query.predicates)
        if relation.n_rows == 0:
            return QueryResult(query.group_by, {})
        group_index, unique_rows = relation.group_codes(query.group_by)
        weights = relation.weights
        n_groups = unique_rows.shape[0]
        weight_totals = np.bincount(group_index, weights=weights, minlength=n_groups)
        function = query.aggregate.function
        if function is AggregateFunction.COUNT:
            values = weight_totals
        else:
            measure = self._numeric_column(relation, query.aggregate.attribute)
            weighted_sums = np.bincount(
                group_index, weights=weights * measure, minlength=n_groups
            )
            if function is AggregateFunction.SUM:
                values = weighted_sums
            else:
                with np.errstate(divide="ignore", invalid="ignore"):
                    values = np.where(
                        weight_totals > 0, weighted_sums / weight_totals, 0.0
                    )
        domains = [relation.schema[name].domain for name in query.group_by]
        results = {}
        for row, value, weight_total in zip(unique_rows, values, weight_totals):
            if weight_total <= 0:
                continue
            key = tuple(domain.decode(code) for domain, code in zip(domains, row))
            results[key] = float(value)
        return QueryResult(query.group_by, results)

    def join_group_by(self, query: JoinGroupByQuery) -> QueryResult:
        left = self._apply_predicates(self._relation, query.left_predicates)
        right = self._apply_predicates(self._relation, query.right_predicates)
        if left.n_rows == 0 or right.n_rows == 0:
            return QueryResult((query.left_group, query.right_group), {})
        left_counts = left.value_counts((query.left_join, query.left_group), weighted=True)
        right_counts = right.value_counts(
            (query.right_join, query.right_group), weighted=True
        )
        right_by_key = {}
        for (join_value, group_value), weight in right_counts.items():
            right_by_key.setdefault(join_value, []).append((group_value, weight))
        results = {}
        for (join_value, left_group_value), left_weight in left_counts.items():
            for right_group_value, right_weight in right_by_key.get(join_value, []):
                key = (left_group_value, right_group_value)
                results[key] = results.get(key, 0.0) + left_weight * right_weight
        return QueryResult((query.left_group, query.right_group), results)

    @staticmethod
    def _apply_predicates(relation, predicates):
        if not predicates:
            return relation
        mask = np.ones(relation.n_rows, dtype=bool)
        for predicate in predicates:
            mask &= predicate.mask(relation)
        return relation.filter_mask(mask)

    @staticmethod
    def _numeric_column(relation, attribute):
        values = relation.decoded_column(attribute)
        try:
            return np.asarray(values, dtype=float)
        except (TypeError, ValueError):
            raise QueryError(
                f"attribute {attribute!r} is not numeric; cannot SUM/AVG over it"
            ) from None


@pytest.fixture(scope="module")
def weighted_relation() -> Relation:
    """A weighted relation with non-trivial weights (like a reweighted sample)."""
    population = build_correlated_population()
    rng = np.random.default_rng(42)
    sample = population.take(rng.choice(population.n_rows, size=900, replace=False))
    return sample.with_weights(rng.uniform(0.25, 7.5, size=sample.n_rows))


@pytest.fixture(scope="module")
def engines(weighted_relation):
    return (
        WeightedQueryEngine(weighted_relation),
        LegacyWeightedQueryEngine(weighted_relation),
    )


class TestBitIdentityWithLegacyEngine:
    """Every shape, every workload entry: new floats == old floats."""

    def test_point_queries(self, weighted_relation, engines):
        new, legacy = engines
        workload = PointQueryWorkload(weighted_relation, seed=0)
        for attributes in (("A",), ("A", "B"), ("A", "B", "C")):
            for entry in workload.generate(attributes, "random", 20):
                assignment = entry.query.as_dict()
                assert new.point(assignment) == legacy.point(assignment)

    def test_out_of_domain_point_is_zero(self, engines):
        new, legacy = engines
        assert new.point({"A": 99}) == legacy.point({"A": 99}) == 0.0

    def test_scalar_queries(self, weighted_relation, engines):
        new, legacy = engines
        workload = MixedQueryWorkload(weighted_relation, seed=1)
        entries = workload.scalar_queries(30, n_predicates=2)
        assert entries
        for entry in entries:
            assert new.scalar(entry.query) == legacy.scalar(entry.query)

    def test_group_by_queries(self, weighted_relation, engines):
        new, legacy = engines
        workload = MixedQueryWorkload(weighted_relation, seed=2)
        entries = workload.group_by_queries(30, n_predicates=1)
        assert entries
        for entry in entries:
            assert new.group_by(entry.query) == legacy.group_by(entry.query)

    def test_join_group_by_queries(self, weighted_relation, engines):
        new, legacy = engines
        queries = [
            JoinGroupByQuery(
                left_join="B", right_join="B", left_group="A", right_group="C"
            ),
            JoinGroupByQuery(
                left_join="A",
                right_join="A",
                left_group="B",
                right_group="C",
                left_predicates=(Predicate("C", Comparison.EQ, 1),),
            ),
            JoinGroupByQuery(
                left_join="C",
                right_join="C",
                left_group="A",
                right_group="B",
                left_predicates=(Predicate("A", Comparison.LE, 1),),
                right_predicates=(Predicate("B", Comparison.IN, (0, 2)),),
            ),
        ]
        for query in queries:
            assert new.join_group_by(query) == legacy.join_group_by(query)

    def test_join_against_other_relation_uses_its_own_domains(self):
        """Regression: right-side literals must bucketize against *other*'s
        schema when it codes the same values differently than the left."""
        left_schema = Schema(
            [Attribute("j", Domain([0, 1])), Attribute("g", Domain(["x", "y"])),
             Attribute("c", Domain(["SF", "NY"]))]
        )
        other_schema = Schema(
            [Attribute("j", Domain([0, 1])), Attribute("g", Domain(["x", "y"])),
             Attribute("c", Domain(["NY", "SF"]))]  # reversed coding of c
        )
        left = Relation.from_rows(left_schema, [(0, "x", "SF"), (1, "y", "NY")])
        other = Relation.from_rows(other_schema, [(0, "x", "SF"), (1, "y", "NY")])
        query = JoinGroupByQuery(
            left_join="j", right_join="j", left_group="g", right_group="g",
            right_predicates=(Predicate("c", Comparison.EQ, "SF"),),
        )
        result = WeightedQueryEngine(left).join_group_by(query, other=other)
        # Only the j=0 rows have c='SF' on the right, so ('x','x') joins.
        assert result.as_dict() == {("x", "x"): 1.0}

    def test_all_predicate_comparisons(self, weighted_relation, engines):
        new, legacy = engines
        comparisons = [
            Predicate("A", Comparison.EQ, 1),
            Predicate("A", Comparison.NE, 1),
            Predicate("A", Comparison.LT, 2),
            Predicate("A", Comparison.LE, 1),
            Predicate("A", Comparison.GT, 0),
            Predicate("A", Comparison.GE, 1),
            Predicate("A", Comparison.IN, (0, 2)),
            Predicate("A", Comparison.EQ, 99),   # out of domain
            Predicate("A", Comparison.NE, 99),   # out of domain
            Predicate("A", Comparison.IN, (98, 99)),
            Predicate("A", Comparison.LT, -1),   # below every domain value
            Predicate("A", Comparison.GT, -1),
        ]
        for predicate in comparisons:
            query = ScalarAggregateQuery(predicates=(predicate,))
            assert new.scalar(query) == legacy.scalar(query)

    def test_zero_weight_groups_dropped_identically(self, weighted_relation):
        zeroed = weighted_relation.with_weights(
            np.where(weighted_relation.column("A") == 0, 0.0, weighted_relation.weights)
        )
        query = GroupByQuery(group_by=("A",))
        assert WeightedQueryEngine(zeroed).group_by(query) == LegacyWeightedQueryEngine(
            zeroed
        ).group_by(query)

    def test_empty_relation(self, weighted_relation):
        empty = weighted_relation.filter_mask(
            np.zeros(weighted_relation.n_rows, dtype=bool)
        )
        new, legacy = WeightedQueryEngine(empty), LegacyWeightedQueryEngine(empty)
        query = GroupByQuery(group_by=("A", "B"))
        assert new.group_by(query) == legacy.group_by(query) == QueryResult(("A", "B"), {})


class TestBitIdentityOnFittedModel:
    """Compile-then-run entry points equal the hybrid evaluator exactly."""

    def test_point_routing_identity(self, serving_themis, sparse_serving_themis):
        for themis in (serving_themis, sparse_serving_themis):
            hybrid = themis.model.hybrid_evaluator
            workload = PointQueryWorkload(themis.model.sample, seed=5)
            queries = [
                entry.query
                for attrs in (("A",), ("A", "B"), ("B", "C"))
                for entry in workload.generate(attrs, "random", 10)
            ]
            # Include tuples certain to miss the sparse sample (BN route).
            queries += [PointQuery({"A": 2, "B": 2, "C": 1}), PointQuery({"A": 1, "C": 0})]
            for query in queries:
                assert themis.query(query) == hybrid.execute(query)

    def test_scalar_and_group_by_routing_identity(self, serving_themis):
        hybrid = serving_themis.model.hybrid_evaluator
        workload = MixedQueryWorkload(serving_themis.model.weighted_sample, seed=6)
        for entry in workload.scalar_queries(12) + workload.group_by_queries(12):
            assert serving_themis.query(entry.query) == hybrid.execute(entry.query)

    def test_bn_routed_scalar_identity(self, sparse_serving_themis):
        # An out-of-sample conjunction: the scalar routes to the network.
        query = ScalarAggregateQuery(
            predicates=(
                Predicate("A", Comparison.EQ, 2),
                Predicate("B", Comparison.EQ, 2),
                Predicate("C", Comparison.EQ, 1),
            )
        )
        plan = sparse_serving_themis.plan(query)
        hybrid = sparse_serving_themis.model.hybrid_evaluator
        assert sparse_serving_themis.query(query) == hybrid.scalar(query)
        if plan.route == ROUTE_BAYES_NET:  # sample truly misses the conjunction
            bn = sparse_serving_themis.model.bayes_net_evaluator
            assert sparse_serving_themis.query(query) == bn.scalar(query)

    def test_join_group_by_identity(self, serving_themis):
        query = JoinGroupByQuery(
            left_join="B", right_join="B", left_group="A", right_group="C"
        )
        hybrid = serving_themis.model.hybrid_evaluator
        assert serving_themis.query(query) == hybrid.join_group_by(query)

    def test_sql_entry_point_identity(self, serving_themis):
        hybrid = serving_themis.model.hybrid_evaluator
        workload = MixedQueryWorkload(serving_themis.model.weighted_sample, seed=7)
        for entry in workload.generate(4, 4, 4):
            assert serving_themis.query(entry.sql) == hybrid.execute(
                parse_sql(entry.sql).query
            )


class TestRoundTripCanonicalKeys:
    """SQL text -> AST -> compiled plan -> canonical key is stable and equals
    the key of the equivalent hand-built query, for every workload shape."""

    @pytest.fixture(scope="class")
    def compiler(self) -> PlanCompiler:
        return PlanCompiler(build_correlated_population().schema)

    @pytest.fixture(scope="class")
    def workload(self):
        return MixedQueryWorkload(build_correlated_population(), seed=11).generate(
            n_point=8, n_scalar=9, n_group_by=9
        )

    def test_every_shape_is_covered(self, workload):
        assert {entry.shape for entry in workload} == {"point", "scalar", "group-by"}
        # ...and every predicate comparison shape, IN included.
        comparisons = {
            predicate.comparison
            for entry in workload
            for predicate in getattr(entry.query, "predicates", ())
        }
        assert Comparison.IN in comparisons
        assert any(c in comparisons for c in (Comparison.EQ,))
        assert any(
            c in comparisons
            for c in (Comparison.LE, Comparison.GE, Comparison.LT, Comparison.GT)
        )

    def test_sql_key_equals_hand_built_key(self, compiler, workload):
        for entry in workload:
            parsed = parse_sql(entry.sql).query
            assert compiler.compile(parsed).key == compiler.compile(entry.query).key, (
                f"round-trip key mismatch for {entry.sql!r}"
            )

    def test_keys_are_stable_across_compilers(self, workload):
        schema = build_correlated_population().schema
        first, second = PlanCompiler(schema), PlanCompiler(schema)
        for entry in workload:
            assert first.compile(entry.query).key == second.compile(entry.query).key

    def test_planner_key_is_the_compiled_key(self, workload):
        schema = build_correlated_population().schema
        planner = QueryPlanner(schema)
        compiler = PlanCompiler(schema)
        for entry in workload:
            assert planner.canonical_key(entry.query) == compiler.compile(entry.query).key
            assert planner.plan(entry.query).key == compiler.compile(entry.query).key

    def test_join_key_round_trip(self, compiler):
        query = JoinGroupByQuery(
            left_join="B",
            right_join="B",
            left_group="A",
            right_group="C",
            left_predicates=(Predicate("C", Comparison.EQ, 1),),
        )
        assert compiler.compile(query).key == compiler.compile(query).key
        reordered = JoinGroupByQuery(
            left_join="B",
            right_join="B",
            left_group="A",
            right_group="C",
            left_predicates=(Predicate("C", Comparison.EQ, 1),),
        )
        assert compiler.compile(reordered).key == compiler.compile(query).key


class TestMaskCache:
    def test_warm_lookup_hits(self, weighted_relation):
        cache = MaskCache(weighted_relation)
        predicate = PlanCompiler(weighted_relation.schema).canonical_predicate(
            Predicate("A", Comparison.LE, 1)
        )
        first = cache.predicate_mask(predicate)
        second = cache.predicate_mask(predicate)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_conjunction_mask_cached_and_order_insensitive(self, weighted_relation):
        compiler = PlanCompiler(weighted_relation.schema)
        cache = MaskCache(weighted_relation)
        a = compiler.canonical_predicate(Predicate("A", Comparison.LE, 1))
        b = compiler.canonical_predicate(Predicate("B", Comparison.NE, 0))
        forward = cache.conjunction_mask((a, b))
        hits_before = cache.hits
        backward = cache.conjunction_mask((b, a))
        assert backward is forward
        assert cache.hits == hits_before + 1

    def test_generation_invalidation(self, weighted_relation):
        cache = MaskCache(weighted_relation, generation=3)
        predicate = PlanCompiler(weighted_relation.schema).canonical_predicate(
            Predicate("A", Comparison.EQ, 0)
        )
        cache.predicate_mask(predicate)
        assert len(cache) == 1
        cache.invalidate(generation=4)
        assert len(cache) == 0
        cache.predicate_mask(predicate)
        assert cache.misses == 2  # recomputed under the new generation

    def test_executor_shares_masks_across_queries(self, weighted_relation):
        executor = ColumnarExecutor(weighted_relation)
        engine = WeightedQueryEngine(weighted_relation, executor=executor)
        predicate = Predicate("A", Comparison.LE, 1)
        engine.scalar(ScalarAggregateQuery(predicates=(predicate,)))
        misses_after_first = executor.mask_cache.misses
        engine.group_by(GroupByQuery(group_by=("B",), predicates=(predicate,)))
        assert executor.mask_cache.misses == misses_after_first  # pure hits


class TestRoutingMatchesHybrid:
    def test_resolve_route_matches_planner(self, serving_themis):
        model = serving_themis.model
        planner = QueryPlanner(model.sample.schema, model)
        compiler = PlanCompiler(model.sample.schema)
        queries = [
            PointQuery({"A": 0}),
            PointQuery({"A": 2, "B": 2, "C": 1}),
            ScalarAggregateQuery(predicates=(Predicate("A", Comparison.EQ, 0),)),
            ScalarAggregateQuery(),
            GroupByQuery(group_by=("A",)),
            JoinGroupByQuery(
                left_join="B", right_join="B", left_group="A", right_group="C"
            ),
        ]
        for query in queries:
            routed = resolve_route(compiler.compile(query), model)
            assert routed.route == planner.plan(query).route

    def test_unrouted_plan_defaults_to_hybrid(self):
        compiler = PlanCompiler(build_correlated_population().schema)
        plan = compiler.compile(GroupByQuery(group_by=("A",)))
        assert plan.route is None
        assert resolve_route(plan, None).route == ROUTE_HYBRID


class TestExplainHook:
    def test_query_explain_returns_compiled_plan(self, serving_themis):
        explained = serving_themis.query(
            "SELECT A, COUNT(*) FROM sample WHERE B <= 1 GROUP BY A", explain=True
        )
        plain = serving_themis.query(
            "SELECT A, COUNT(*) FROM sample WHERE B <= 1 GROUP BY A"
        )
        assert explained.result == plain
        assert explained.plan.shape == "group-by"
        assert explained.route == ROUTE_HYBRID
        rendering = explained.explain()
        assert "Group[A]" in rendering and "Scan[sample]" in rendering

    def test_point_explain_routes(self, serving_themis):
        explained = serving_themis.query(PointQuery({"A": 0}), explain=True)
        assert explained.route in (ROUTE_SAMPLE, ROUTE_BAYES_NET)
        assert explained.plan.key[0] == "point"


class TestQueryResultEquality:
    def test_equal_results_compare_and_hash_equal(self):
        left = QueryResult(("A",), {(0,): 1.5, (1,): 2.5})
        right = QueryResult(("A",), {(1,): 2.5, (0,): 1.5})
        assert left == right
        assert hash(left) == hash(right)

    def test_value_difference_detected(self):
        left = QueryResult(("A",), {(0,): 1.5})
        right = QueryResult(("A",), {(0,): 1.5 + 1e-12})
        assert left != right

    def test_group_by_columns_matter(self):
        assert QueryResult(("A",), {(0,): 1.0}) != QueryResult(("B",), {(0,): 1.0})

    def test_non_result_comparison(self):
        assert QueryResult(("A",), {}) != {"anything": 1}


class TestEvaluatorErrorMessages:
    def test_execute_reports_offending_query_repr(self, serving_themis):
        bogus = {"not": "a query"}
        with pytest.raises(QueryError) as excinfo:
            serving_themis.model.hybrid_evaluator.execute(bogus)
        message = str(excinfo.value)
        assert "dict" in message
        assert repr(bogus) in message

    def test_base_class_dispatch_raises_with_repr(self):
        with pytest.raises(QueryError) as excinfo:
            OpenWorldEvaluator().execute(42)
        assert "int" in str(excinfo.value)
        assert "42" in str(excinfo.value)


class TestExactBNLowering:
    def test_scalar_exact_matches_manual_inference(self, sparse_serving_themis):
        model = sparse_serving_themis.model
        bn = model.bayes_net_evaluator
        query = ScalarAggregateQuery(
            predicates=(
                Predicate("A", Comparison.EQ, 2),
                Predicate("B", Comparison.EQ, 2),
            )
        )
        expected = model.population_size * ExactInference(bn.network).probability(
            {"A": 2, "B": 2}
        )
        assert bn.scalar_exact(query) == pytest.approx(expected, rel=1e-9)

    def test_scalar_exact_with_range_predicate(self, sparse_serving_themis):
        model = sparse_serving_themis.model
        bn = model.bayes_net_evaluator
        query = ScalarAggregateQuery(predicates=(Predicate("A", Comparison.LE, 1),))
        inference = ExactInference(bn.network)
        expected = model.population_size * (
            inference.probability({"A": 0}) + inference.probability({"A": 1})
        )
        assert bn.scalar_exact(query) == pytest.approx(expected, rel=1e-9)

    def test_group_by_exact_masses_sum_to_population(self, sparse_serving_themis):
        model = sparse_serving_themis.model
        bn = model.bayes_net_evaluator
        result = bn.group_by_exact(GroupByQuery(group_by=("A", "B")))
        assert sum(result.as_dict().values()) == pytest.approx(
            model.population_size, rel=1e-6
        )

    def test_group_by_exact_avg_matches_conditional_expectation(
        self, sparse_serving_themis
    ):
        bn = sparse_serving_themis.model.bayes_net_evaluator
        result = bn.group_by_exact(
            GroupByQuery(
                group_by=("A",), aggregate=AggregateSpec(AggregateFunction.AVG, "C")
            )
        )
        inference = ExactInference(bn.network)
        for (a_value,), average in result:
            conditional = inference.conditional("C", {"A": a_value})
            domain = bn.network.schema["C"].domain
            expected = float(
                np.dot(conditional, np.asarray(domain.values, dtype=float))
            )
            assert average == pytest.approx(expected, rel=1e-9)

    def test_derived_factors_skip_elimination(self, sparse_serving_themis):
        from repro.bayesnet import BatchedInference

        network = sparse_serving_themis.model.bayes_net_evaluator.network
        engine = BatchedInference(network)  # fresh cache, no shared state
        # Eliminate the superset first...
        engine.joint_factor(("A", "B", "C"))
        passes_before = engine.elimination_passes
        # ...then derive a subset factor from the shared eliminated prefix.
        factor = engine.joint_factor(("A", "B"), allow_derived=True)
        assert engine.elimination_passes == passes_before
        assert engine.derived_factors == 1
        exact = engine.eliminated_factor(("A", "B"))
        assert np.allclose(
            np.asarray(factor.table), np.asarray(exact.table), rtol=1e-12
        )

    def test_conditional_is_cached_and_bit_identical(self, sparse_serving_themis):
        bn = sparse_serving_themis.model.bayes_net_evaluator
        fresh = ExactInference(bn.network)
        reference = fresh.eliminate(keep=("C", "A")).restrict({"A": 1})
        expected = reference.table / reference.table.sum()
        engine = bn.inference.batched
        first = bn.inference.conditional("C", {"A": 1})
        passes_after_first = engine.elimination_passes
        second = bn.inference.conditional("C", {"A": 1})
        assert engine.elimination_passes == passes_after_first  # cached factor
        assert np.array_equal(first, second)
        assert np.array_equal(first, expected)

    def test_exact_session_batches_bn_scalars(self, sparse_serving_themis):
        session = sparse_serving_themis.serve(exact_bn_aggregates=True)
        # Pick conjunctions absent from the sample, so the scalars provably
        # route to the network.
        sample = sparse_serving_themis.model.weighted_sample
        missing = [
            {"A": a, "B": b, "C": c}
            for a in (2, 1)
            for b in (2, 1, 0)
            for c in (1, 0)
            if not sample.contains({"A": a, "B": b, "C": c})
        ][:2]
        assert len(missing) == 2, "sparse sample unexpectedly covers every tuple"
        queries = [
            ScalarAggregateQuery(
                predicates=tuple(
                    Predicate(name, Comparison.EQ, value)
                    for name, value in assignment.items()
                )
            )
            for assignment in missing
        ]
        plans = [sparse_serving_themis.plan(query) for query in queries]
        assert all(plan.route == ROUTE_BAYES_NET for plan in plans)
        batch = session.execute_batch(queries)
        bn = sparse_serving_themis.model.bayes_net_evaluator
        for outcome, query in zip(batch, queries):
            assert outcome.bn_batched
            # The served plan's Route node records the lowering it ran under.
            assert outcome.plan.bn_lowering == "exact"
            assert outcome.result == pytest.approx(bn.scalar_exact(query), rel=1e-12)
        # Exactly-lowered scalars never touch the generated samples.
        assert batch.amortized_inference_seconds == 0.0
