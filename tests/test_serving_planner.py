"""Tests for the query planner: canonical plan keys and evaluator routing."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.query import (
    AggregateFunction,
    AggregateSpec,
    Comparison,
    GroupByQuery,
    PointQuery,
    Predicate,
    ScalarAggregateQuery,
)
from repro.serving import (
    ROUTE_BAYES_NET,
    ROUTE_HYBRID,
    ROUTE_SAMPLE,
    QueryPlanner,
)
from repro.sql.parser import parse_sql


@pytest.fixture
def planner(serving_themis):
    model = serving_themis.model
    return QueryPlanner(model.sample.schema, model)


@pytest.fixture
def bare_planner(correlated_population):
    """A planner with no model (routes everything to the hybrid)."""
    return QueryPlanner(correlated_population.schema)


class TestCanonicalKeys:
    def test_reordered_conjuncts_hash_identically(self, planner):
        first = parse_sql("SELECT COUNT(*) FROM s WHERE A = 0 AND B = 1").query
        second = parse_sql("SELECT COUNT(*) FROM s WHERE B = 1 AND A = 0").query
        assert planner.canonical_key(first) == planner.canonical_key(second)

    def test_sql_count_of_equalities_plans_as_point(self, planner):
        """SQL COUNT-of-equalities parses to PointQuery, so text canonicalizes."""
        plan = planner.plan("SELECT COUNT(*) FROM s WHERE B = 1 AND A = 0")
        assert isinstance(plan.query, PointQuery)
        assert plan.key == planner.canonical_key(PointQuery({"A": 0, "B": 1}))

    def test_scalar_count_ast_keeps_its_own_key(self, planner):
        """An AST COUNT scalar is NOT folded into the point key: on the BN
        route exact inference (point) and generated-sample averaging (scalar)
        give different answers, so the shapes must not share cache entries."""
        point = PointQuery({"A": 0, "B": 1})
        scalar = ScalarAggregateQuery(
            aggregate=AggregateSpec(AggregateFunction.COUNT),
            predicates=(
                Predicate("B", Comparison.EQ, 1),
                Predicate("A", Comparison.EQ, 0),
            ),
        )
        assert planner.canonical_key(point) != planner.canonical_key(scalar)

    def test_different_constants_hash_differently(self, planner):
        assert planner.canonical_key(PointQuery({"A": 0})) != planner.canonical_key(
            PointQuery({"A": 1})
        )

    def test_ordered_literals_bucketize(self, planner):
        # Domain of A is [0, 1, 2]; both literals share the bucket threshold 1.
        same_bucket = [
            GroupByQuery(("B",), predicates=(Predicate("A", Comparison.LT, 1),)),
            GroupByQuery(("B",), predicates=(Predicate("A", Comparison.LT, 1.5),)),
        ]
        other_bucket = GroupByQuery(
            ("B",), predicates=(Predicate("A", Comparison.LT, 2),)
        )
        keys = [planner.canonical_key(query) for query in same_bucket]
        assert keys[0] == keys[1]
        assert planner.canonical_key(other_bucket) != keys[0]

    def test_in_lists_canonicalize(self, planner):
        first = GroupByQuery(("B",), predicates=(Predicate("A", Comparison.IN, (2, 0, 0)),))
        second = GroupByQuery(("B",), predicates=(Predicate("A", Comparison.IN, [0, 2]),))
        assert planner.canonical_key(first) == planner.canonical_key(second)

    def test_group_by_order_is_semantic(self, planner):
        ab = GroupByQuery(("A", "B"))
        ba = GroupByQuery(("B", "A"))
        assert planner.canonical_key(ab) != planner.canonical_key(ba)

    def test_aggregate_function_distinguishes_plans(self, planner):
        count = GroupByQuery(("A",))
        avg = GroupByQuery(("A",), aggregate=AggregateSpec(AggregateFunction.AVG, "B"))
        assert planner.canonical_key(count) != planner.canonical_key(avg)

    def test_keys_are_hashable(self, planner):
        key = planner.canonical_key(PointQuery({"A": 0}))
        assert hash(key) == hash(key)
        assert {key: 1}[key] == 1


class TestRouting:
    def test_point_in_sample_routes_to_sample(self, planner, serving_themis):
        sample = serving_themis.model.weighted_sample
        values = dict(zip(sample.attribute_names, sample.row(0)))
        plan = planner.plan(PointQuery(values))
        assert plan.route == ROUTE_SAMPLE

    def test_point_missing_from_sample_routes_to_bn(self, planner, serving_themis):
        sample = serving_themis.model.weighted_sample
        missing = None
        for a in (0, 1, 2):
            for b in (0, 1, 2):
                for c in (0, 1):
                    candidate = {"A": a, "B": b, "C": c}
                    if not sample.contains(candidate):
                        missing = candidate
                        break
        if missing is None:
            pytest.skip("sample covers the full domain at this seed")
        plan = planner.plan(PointQuery(missing))
        assert plan.route == ROUTE_BAYES_NET

    def test_group_by_routes_to_hybrid(self, planner):
        plan = planner.plan(GroupByQuery(("A",)))
        assert plan.route == ROUTE_HYBRID
        assert plan.needs_generated_samples

    def test_unfiltered_scalar_routes_to_sample(self, planner):
        plan = planner.plan(ScalarAggregateQuery())
        assert plan.route == ROUTE_SAMPLE

    def test_plans_without_model_route_to_hybrid(self, bare_planner):
        plan = bare_planner.plan(PointQuery({"A": 0}))
        assert plan.route == ROUTE_HYBRID

    def test_routes_match_hybrid_answers(self, planner, serving_themis):
        """Whatever the route, the served answer equals the hybrid's."""
        model = serving_themis.model
        queries = [
            PointQuery({"A": 0}),
            PointQuery({"A": 2, "B": 2, "C": 1}),
            ScalarAggregateQuery(predicates=(Predicate("A", Comparison.LE, 1),)),
        ]
        for query in queries:
            plan = planner.plan(query)
            evaluator = {
                ROUTE_SAMPLE: model.sample_evaluator,
                ROUTE_BAYES_NET: model.bayes_net_evaluator,
                ROUTE_HYBRID: model.hybrid_evaluator,
            }[plan.route]
            assert evaluator.execute(query) == model.hybrid_evaluator.execute(query)


class TestPlanningSurface:
    def test_sql_text_is_recorded(self, planner):
        plan = planner.plan("SELECT COUNT(*) FROM s WHERE A = 0")
        assert plan.sql == "SELECT COUNT(*) FROM s WHERE A = 0"

    def test_unknown_attribute_rejected(self, planner):
        with pytest.raises(QueryError):
            planner.plan(PointQuery({"bogus": 1}))

    def test_group_signature_shared_by_same_columns(self, planner):
        one = planner.plan(GroupByQuery(("A",), predicates=(Predicate("C", Comparison.EQ, 0),)))
        two = planner.plan(GroupByQuery(("A",)))
        other = planner.plan(GroupByQuery(("B",)))
        assert one.group_signature == two.group_signature
        assert one.group_signature != other.group_signature
