"""Tests for the join-aware batch optimizer.

The load-bearing guarantee: join-side fusion, the cross-batch join-side
cache, and the per-generated-sample batching of hybrid join families are
**bit-identical** to per-plan execution at every layer (columnar executor,
evaluators, serving batches — including after a mid-session refit), while
the new counters prove the rewrites actually fire.  Every equality below is
exact (``==``), never a tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.plan import (
    ColumnarExecutor,
    JoinSideCache,
    OptimizerStats,
    PlanCompiler,
    fused_grouped_weight_totals,
    grouped_weight_totals,
    optimize_batch,
)
from repro.plan.optimize import UNIT_JOIN
from repro.query import (
    AggregateFunction,
    AggregateSpec,
    Comparison,
    GroupByQuery,
    JoinGroupByQuery,
    PointQuery,
    Predicate,
    ScalarAggregateQuery,
)
from repro.schema import Attribute, Domain, Relation, Schema
from repro.serving.cache import LRUCache, ResultCache


def build_relation(n_rows: int = 3000, seed: int = 23) -> Relation:
    rng = np.random.default_rng(seed)
    sizes = {"a": 8, "b": 6, "c": 5, "d": 4, "e": 3}
    schema = Schema(
        [Attribute(name, Domain(list(range(size)))) for name, size in sizes.items()]
    )
    columns = {
        name: rng.integers(0, size, size=n_rows, dtype=np.int64)
        for name, size in sizes.items()
    }
    weights = rng.uniform(0.1, 5.0, size=n_rows)
    return Relation(schema, columns, weights)


@pytest.fixture(scope="module")
def relation() -> Relation:
    return build_relation()


@pytest.fixture(scope="module")
def compiler(relation) -> PlanCompiler:
    return PlanCompiler(relation.schema)


def join_query(
    left_group="b",
    right_group="c",
    left_predicates=(),
    right_predicates=(),
    join_key="a",
) -> JoinGroupByQuery:
    return JoinGroupByQuery(
        left_join=join_key,
        right_join=join_key,
        left_group=left_group,
        right_group=right_group,
        left_predicates=tuple(left_predicates),
        right_predicates=tuple(right_predicates),
    )


FILTER = (Predicate("d", Comparison.LE, 2), Predicate("e", Comparison.GE, 1))


class TestFusedJoinSideKernel:
    def test_fused_totals_match_per_side_kernel(self, relation):
        executor = ColumnarExecutor(relation)
        plan = executor.compiler.compile(join_query(left_predicates=FILTER))
        masks = [
            executor.mask_cache.conjunction_mask(plan.join.left.child.predicates),
            None,
        ]
        fused = fused_grouped_weight_totals(relation, ("a", "b"), masks)
        for mask, totals in zip(masks, fused):
            assert totals == grouped_weight_totals(relation, ("a", "b"), mask)

    def test_single_side_delegates_to_the_fused_kernel(self, relation):
        mask = relation.column("d") <= 1
        alone = grouped_weight_totals(relation, ("a", "c"), mask)
        (stacked,) = fused_grouped_weight_totals(relation, ("a", "c"), [mask])
        assert alone == stacked


class TestJoinSideSharing:
    def test_reordered_and_padded_side_filters_share_one_side(self, compiler):
        reordered = join_query(left_predicates=FILTER[::-1])
        padded = join_query(
            left_predicates=FILTER + (Predicate("d", Comparison.LE, 3),)
        )
        plans = [compiler.compile(q) for q in (join_query(left_predicates=FILTER), reordered, padded)]
        assert len({plan.key for plan in plans}) == 2  # padded has its own key
        schedule = optimize_batch(plans)
        # All three collapse to one slot; one left side, one (empty) right.
        assert len(schedule.slots) == 1
        assert schedule.stats.plans_deduped == 2
        assert len(schedule.join_sides) == 2

    def test_plans_sharing_a_side_schedule_it_once(self, compiler):
        queries = [
            join_query("b", "c", left_predicates=FILTER),
            join_query("b", "d", left_predicates=FILTER),  # same left side
            join_query("c", "b"),  # mirror of the unfiltered sides
        ]
        plans = [compiler.compile(q) for q in queries]
        schedule = optimize_batch(plans)
        (unit,) = [u for u in schedule.units if u.kind == UNIT_JOIN]
        assert unit.slots == (0, 1, 2)
        # Distinct sides: (a,b)+FILTER, (a,c)+(), (a,d)+(), (a,c)... the
        # mirror's left (a,c) and right (a,b) reuse scheduled key sets only
        # when the filters match too: (a,c) empty is shared with slot 0's
        # right side; (a,b) empty is new.
        assert len(schedule.join_sides) == 4
        assert schedule.stats.join_sides_fused > 0
        # Every slot's side references point into the shared table.
        for left, right in unit.sides:
            assert 0 <= left < len(schedule.join_sides)
            assert 0 <= right < len(schedule.join_sides)

    def test_identical_left_and_right_sides_compute_once(self, compiler):
        plan = compiler.compile(join_query("b", "b"))
        schedule = optimize_batch([plan])
        assert len(schedule.join_sides) == 1
        assert schedule.stats.join_sides_fused == 1


class TestColumnarJoinBitIdentity:
    def _queries(self):
        return [
            join_query("b", "c", left_predicates=FILTER),
            join_query("b", "c", left_predicates=FILTER[::-1]),
            join_query("b", "d", left_predicates=FILTER),
            join_query("c", "b", right_predicates=FILTER),
            join_query("b", "b"),
            join_query("b", "c", left_predicates=FILTER),  # exact duplicate
            # Non-join shapes riding along in the same batch.
            GroupByQuery(("b",), predicates=FILTER),
            ScalarAggregateQuery(
                aggregate=AggregateSpec(AggregateFunction.COUNT), predicates=FILTER
            ),
            PointQuery({"d": 1}),
        ]

    def test_optimized_join_batch_matches_per_plan(self, relation):
        queries = self._queries()
        reference = [ColumnarExecutor(relation).execute(q) for q in queries]
        stats = OptimizerStats()
        optimized = ColumnarExecutor(relation).execute_batch(queries, stats=stats)
        unoptimized = ColumnarExecutor(relation).execute_batch(
            queries, optimize=False
        )
        assert optimized == reference
        assert unoptimized == reference
        assert stats.join_sides_fused > 0
        assert stats.plans_deduped > 0
        assert stats.join_side_cache_hits == 0  # first batch: nothing cached

    def test_second_batch_hits_the_join_side_cache_bit_identically(self, relation):
        queries = self._queries()
        executor = ColumnarExecutor(relation)
        first = executor.execute_batch(queries)
        stats = OptimizerStats()
        second = executor.execute_batch(queries, stats=stats)
        assert second == first
        assert stats.join_side_cache_hits > 0
        assert executor.join_side_cache.statistics()["hits"] > 0

    def test_empty_and_join_only_batches(self, relation):
        executor = ColumnarExecutor(relation)
        assert executor.execute_batch([]) == []
        queries = [join_query("b", "c"), join_query("b", "c")]
        results = executor.execute_batch(queries)
        assert results[0] == results[1]
        assert results[0] == ColumnarExecutor(relation).execute(queries[0])


class TestJoinSideCache:
    def test_lru_eviction_and_statistics(self):
        cache = JoinSideCache(capacity=2)
        cache.put(("g", "s1"), {("x",): 1.0})
        cache.put(("g", "s2"), {("y",): 2.0})
        assert cache.get(("g", "s1")) == {("x",): 1.0}  # promotes s1
        cache.put(("g", "s3"), {("z",): 3.0})  # evicts s2
        assert cache.get(("g", "s2")) is None
        assert cache.get(("g", "s3")) == {("z",): 3.0}
        stats = cache.statistics()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["cached_sides"] == 2

    def test_entries_is_non_mutating(self):
        cache = JoinSideCache(capacity=2)
        cache.put(("g", "old"), {})
        cache.put(("g", "new"), {})
        assert cache.entries() == [("g", "old"), ("g", "new")]
        # entries() must not promote: "old" is still first out.
        cache.put(("g", "evictor"), {})
        assert cache.get(("g", "old")) is None

    def test_invalidate_drops_entries(self):
        cache = JoinSideCache()
        cache.put(("g", "s"), {})
        cache.invalidate()
        assert len(cache) == 0
        with pytest.raises(ValueError):
            JoinSideCache(capacity=0)


class TestEvaluatorJoinBatches:
    QUERIES = [
        JoinGroupByQuery("A", "A", "B", "C"),
        JoinGroupByQuery(
            "A", "A", "B", "C", left_predicates=(Predicate("B", Comparison.EQ, 1),)
        ),
        JoinGroupByQuery(
            "A", "A", "C", "B", right_predicates=(Predicate("B", Comparison.EQ, 1),)
        ),
    ]

    def test_bn_join_batch_matches_per_query(self, serving_themis):
        evaluator = serving_themis.model.bayes_net_evaluator
        batched = evaluator.join_group_by_batch(self.QUERIES)
        for result, query in zip(batched, self.QUERIES):
            assert result == evaluator.join_group_by(query)

    def test_hybrid_join_batch_matches_per_query(self, serving_themis):
        hybrid = serving_themis.model.hybrid_evaluator
        stats = OptimizerStats()
        batched = hybrid.join_group_by_batch(self.QUERIES, stats=stats)
        for result, query in zip(batched, self.QUERIES):
            assert result == hybrid.join_group_by(query)
        k = serving_themis.model.bayes_net_evaluator.n_generated_samples
        assert stats.bn_sample_dispatches_saved == k * (len(self.QUERIES) - 1)

    def test_empty_join_batches(self, serving_themis):
        assert serving_themis.model.hybrid_evaluator.join_group_by_batch([]) == []
        assert serving_themis.model.bayes_net_evaluator.join_group_by_batch([]) == []


class TestServingJoinBatches:
    WORKLOAD = [
        JoinGroupByQuery("A", "A", "B", "C"),
        JoinGroupByQuery(
            "A", "A", "B", "C", left_predicates=(Predicate("B", Comparison.EQ, 1),)
        ),
        JoinGroupByQuery(  # padded variant: distinct key, same execution
            "A",
            "A",
            "B",
            "C",
            left_predicates=(
                Predicate("B", Comparison.EQ, 1),
                Predicate("B", Comparison.EQ, 1),
            ),
        ),
        JoinGroupByQuery("A", "A", "B", "C"),  # exact duplicate
        GroupByQuery(("A",)),
        PointQuery({"A": 0}),
    ]

    def test_join_batch_matches_per_plan_session_and_singles(self, serving_themis):
        optimized = serving_themis.serve().execute_batch(self.WORKLOAD)
        per_plan = serving_themis.serve(optimize=False).execute_batch(self.WORKLOAD)
        singles = [serving_themis.query(query) for query in self.WORKLOAD]
        for left, right, single in zip(optimized, per_plan, singles):
            assert left.result == right.result
            assert left.result == single

    def test_join_counters_reach_batch_and_session_statistics(self, serving_themis):
        session = serving_themis.serve()
        batch = session.execute_batch(self.WORKLOAD)
        assert batch.optimizer is not None
        assert batch.optimizer["join_sides_fused"] > 0
        assert batch.optimizer["bn_sample_dispatches_saved"] > 0
        stats = session.statistics.as_dict()["optimizer"]
        assert stats["join_sides_fused"] == batch.optimizer["join_sides_fused"]
        assert (
            stats["bn_sample_dispatches_saved"]
            == batch.optimizer["bn_sample_dispatches_saved"]
        )
        # A fresh pairing over already-computed sides hits the cross-batch
        # join-side cache (the repeated plans themselves are result-cache
        # hits, so the cache probe needs a new plan key).
        fresh = JoinGroupByQuery(
            "A",
            "A",
            "B",
            "C",
            left_predicates=(Predicate("B", Comparison.EQ, 1),),
            right_predicates=(Predicate("B", Comparison.EQ, 1),),
        )
        second = session.execute_batch([fresh])
        assert second.optimizer["join_side_cache_hits"] > 0
        # Session-lifetime counters fold in every batch this session served
        # (the model's engine-level cache may already be warm from earlier
        # sessions over the same fitted model, so the first batch can hit
        # too).
        assert (
            session.statistics.as_dict()["optimizer"]["join_side_cache_hits"]
            == batch.optimizer["join_side_cache_hits"]
            + second.optimizer["join_side_cache_hits"]
        )
        caches = session.cache_statistics()
        assert caches["join_side_cache"]["cached_sides"] > 0
        assert caches["join_side_cache"]["hits"] > 0

    def test_unoptimized_session_serves_joins_per_plan(self, serving_themis):
        batch = serving_themis.serve(optimize=False).execute_batch(self.WORKLOAD)
        assert batch.optimizer is None
        assert batch.optimized_plans == 0

    def test_refit_invalidates_the_join_side_cache(self, fresh_serving_themis):
        session = fresh_serving_themis.serve()
        before = session.execute_batch(self.WORKLOAD)
        old_cache = (
            fresh_serving_themis.model.sample_evaluator.engine.executor.join_side_cache
        )
        assert len(old_cache.entries()) > 0
        fresh_serving_themis.refit()
        after = session.execute_batch(self.WORKLOAD)
        new_cache = (
            fresh_serving_themis.model.sample_evaluator.engine.executor.join_side_cache
        )
        # A refit rebuilds the executor: fresh cache object, no stale sides.
        assert new_cache is not old_cache
        per_plan = fresh_serving_themis.serve(optimize=False).execute_batch(
            self.WORKLOAD
        )
        for left, right in zip(after, per_plan):
            assert left.result == right.result
        assert len(before) == len(after)

    def test_warm_join_batch_serves_from_the_result_cache(self, serving_themis):
        session = serving_themis.serve()
        session.execute_batch(self.WORKLOAD)
        warm = session.execute_batch(self.WORKLOAD)
        assert warm.cache_hits == len(self.WORKLOAD)
        assert warm.optimized_plans == 0


class TestExplainOptimizedJoin:
    def test_optimized_join_plan_shares_the_raw_plan_key(self, serving_themis):
        padded = JoinGroupByQuery(
            "A",
            "A",
            "B",
            "C",
            left_predicates=(
                Predicate("B", Comparison.EQ, 1),
                Predicate("B", Comparison.EQ, 1),
            ),
        )
        explained = serving_themis.query(padded, explain="optimized")
        assert explained.optimized is not None
        assert explained.optimized.key == explained.plan.key
        assert len(explained.optimized.join.left.child.predicates) < len(
            explained.plan.join.left.child.predicates
        )
        assert explained.result == serving_themis.query(padded)


class TestCacheEntries:
    def test_lru_entries_snapshot_is_stat_free_and_non_mutating(self):
        cache = LRUCache(capacity=2)
        cache.put("old", 1)
        cache.put("new", 2)
        before = cache.statistics.as_dict()
        assert cache.entries() == [("old", 1), ("new", 2)]
        assert cache.statistics.as_dict() == before
        # entries() must not promote "old": it is still evicted first.
        cache.put("evictor", 3)
        assert "old" not in cache
        assert "new" in cache

    def test_result_cache_entries_snapshot(self):
        cache = ResultCache(capacity=4)
        cache.store(("k1",), 1.0)
        cache.store(("k2",), 2.0)
        before = cache.statistics.as_dict()
        assert cache.entries() == [(("k1",), 1.0), (("k2",), 2.0)]
        assert cache.statistics.as_dict() == before

    def test_session_cache_statistics_report_entry_counts(self, serving_themis):
        session = serving_themis.serve()
        session.execute_batch(
            ["SELECT COUNT(*) FROM sample WHERE A = 0", GroupByQuery(("A",))]
        )
        caches = session.cache_statistics()
        assert caches["result_cache"]["entries"] == len(
            session.result_cache.entries()
        )
        assert caches["result_cache"]["entries"] > 0
        assert caches["plan_cache"]["entries"] > 0
        inference_entries = caches["inference_cache"]["entries"]
        assert set(inference_entries) == {"factors", "marginals", "samples_warm"}
        assert inference_entries["samples_warm"] is True
