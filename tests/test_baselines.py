"""Tests for the reuse baseline of Galakatos et al. [33]."""

from __future__ import annotations

import pytest

from repro.aggregates import AggregateQuery, AggregateSet
from repro.baselines import ConditionalReuseBaseline
from repro.exceptions import QueryError
from repro.metrics import average_group_by_error


@pytest.fixture
def baseline(correlated_population, biased_correlated_sample):
    aggregates = AggregateSet(
        [AggregateQuery.from_relation(correlated_population, ["A"])]
    )
    return ConditionalReuseBaseline(
        biased_correlated_sample, aggregates, population_size=correlated_population.n_rows
    )


class TestConditionalReuse:
    def test_covered_pair_uses_known_marginal(self, baseline, correlated_population):
        """GROUP BY (A, B) benefits from the known Pr(A): totals per A match Γ."""
        result = baseline.group_by_count(("A", "B"))
        truth_a = correlated_population.value_counts(["A"])
        for a_value, true_count in truth_a.items():
            estimated = sum(
                value for group, value in result.as_dict().items() if group[0] == a_value[0]
            )
            assert estimated == pytest.approx(true_count, rel=0.05)

    def test_uncovered_pair_degenerates_to_uniform_scaling(
        self, correlated_population, biased_correlated_sample
    ):
        """Without a usable aggregate the estimate is the uniformly scaled sample."""
        aggregates = AggregateSet(
            [AggregateQuery.from_relation(correlated_population, ["A"])]
        )
        baseline = ConditionalReuseBaseline(
            biased_correlated_sample, aggregates, correlated_population.n_rows
        )
        result = baseline.group_by_count(("B", "C"))
        scale = correlated_population.n_rows / biased_correlated_sample.n_rows
        sample_counts = biased_correlated_sample.value_counts(["B", "C"])
        for group, value in result.as_dict().items():
            assert value == pytest.approx(sample_counts[group] * scale)

    def test_point_query(self, baseline, correlated_population):
        estimate = baseline.point({"A": 0, "B": 0})
        truth = correlated_population.count({"A": 0, "B": 0})
        assert estimate == pytest.approx(truth, rel=0.25)

    def test_covered_pair_beats_uniform_scaling(
        self, correlated_population, biased_correlated_sample
    ):
        aggregates = AggregateSet(
            [AggregateQuery.from_relation(correlated_population, ["A"])]
        )
        baseline = ConditionalReuseBaseline(
            biased_correlated_sample, aggregates, correlated_population.n_rows
        )
        truth = correlated_population.value_counts(["A", "B"])
        reuse_error = average_group_by_error(
            truth, baseline.group_by_count(("A", "B")).as_dict()
        )
        scale = correlated_population.n_rows / biased_correlated_sample.n_rows
        uniform_estimate = {
            group: value * scale
            for group, value in biased_correlated_sample.value_counts(["A", "B"]).items()
        }
        uniform_error = average_group_by_error(truth, uniform_estimate)
        assert reuse_error < uniform_error

    def test_invalid_population_size(self, biased_correlated_sample):
        with pytest.raises(QueryError):
            ConditionalReuseBaseline(biased_correlated_sample, AggregateSet(), 0)

    def test_empty_attribute_list_rejected(self, baseline):
        with pytest.raises(QueryError):
            baseline.group_by_count(())
