"""The plan wire format: round-trips, key verification, golden compatibility.

Three layers of guarantees:

* **Round-trip identity** — ``deserialize(serialize(plan))`` rebuilds an
  equal tree, equal AST, and an *identical canonical key*, property-tested
  over randomized ``MixedQueryWorkload`` plans (every shape the system can
  compile) plus hand-built plans covering every IR node type.
* **Error discipline** — malformed payloads, unknown tags, version skew,
  and cross-schema key disagreement all raise ``WireFormatError`` loudly.
* **Golden compatibility** — ``tests/data/plan_wire_v1.json`` pins the
  exact canonical bytes of a fixed plan set; any encoding change without a
  ``WIRE_FORMAT_VERSION`` bump fails here with regeneration instructions.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import WireFormatError
from repro.plan import (
    WIRE_FORMAT_VERSION,
    PlanCompiler,
    deserialize_plan,
    plan_from_json,
    plan_to_json,
    serialize_plan,
)
from repro.plan.wire import decode_value, encode_value
from repro.query.workload import MixedQueryWorkload
from repro.schema import Attribute, Domain, Relation, Schema

from golden_plans import GOLDEN_PATH, golden_plans, golden_queries
from worlds import build_fitted_themis


@pytest.fixture(scope="module")
def themis():
    return build_fitted_themis()


@pytest.fixture(scope="module")
def compiler(themis):
    return PlanCompiler(themis.sample.schema)


def _assert_round_trip(plan, compiler):
    text = plan_to_json(plan)
    rebuilt = plan_from_json(text)
    assert rebuilt.key == plan.key
    assert rebuilt.root == plan.root
    assert rebuilt.query == plan.query
    assert rebuilt.shape == plan.shape
    assert rebuilt.sql == plan.sql
    # Canonical bytes: equal plans serialize to equal JSON.
    assert plan_to_json(rebuilt) == text
    # With a receiver compiler: recompiled, key-verified, route restored.
    verified = plan_from_json(text, compiler)
    assert verified.key == plan.key
    assert verified.root == plan.root


# ---------------------------------------------------------------------------
# Round-trips
# ---------------------------------------------------------------------------
class TestRoundTrip:
    def test_every_golden_plan_round_trips(self, themis, compiler):
        for name, plan in golden_plans(themis.sample.schema).items():
            _assert_round_trip(plan, compiler)

    @pytest.mark.parametrize("seed", [3, 17, 202, 5087])
    def test_randomized_workload_plans_round_trip(self, themis, compiler, seed):
        workload = MixedQueryWorkload(themis.sample, seed=seed)
        entries = workload.generate(
            n_point=6, n_scalar=6, n_group_by=6, n_analytic=10
        )
        shapes = set()
        for entry in entries:
            plan = compiler.compile(entry.query)
            shapes.add(plan.shape)
            _assert_round_trip(plan, compiler)
        assert shapes == {"point", "scalar", "group-by", "table"}, (
            f"workload seed {seed} missed a shape: {shapes}"
        )

    def test_routed_plans_survive_the_wire(self, themis, compiler):
        session = themis.serve()
        executor = session._ensure_current()
        workload = MixedQueryWorkload(themis.sample, seed=23)
        for entry in workload.generate(n_point=4, n_scalar=4, n_group_by=4):
            routed = executor.plan(entry.query).logical
            assert routed.root.choice is not None
            rebuilt = plan_from_json(plan_to_json(routed), compiler)
            assert rebuilt.root.choice == routed.root.choice
            assert rebuilt.root.bn_lowering == routed.root.bn_lowering
            assert rebuilt.key == routed.key

    def test_sql_compiled_plans_round_trip(self, compiler):
        for sql in [
            "SELECT COUNT(*) FROM R WHERE A = 1 AND B = 2",
            "SELECT AVG(B) FROM R WHERE A IN (0, 2)",
            "SELECT A, COUNT(*) FROM R WHERE B <= 1 GROUP BY A",
            "SELECT A, COUNT(*) AS n FROM R GROUP BY A "
            "HAVING n > 1 ORDER BY n DESC LIMIT 2",
        ]:
            _assert_round_trip(compiler.compile_sql(sql), compiler)


# ---------------------------------------------------------------------------
# Value codec
# ---------------------------------------------------------------------------
class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, -3, 1.5, "x", (), (1, ("a", 2.0)), [1, (2, 3)]],
    )
    def test_exact_round_trip(self, value):
        assert decode_value(encode_value(value)) == value
        # container types restore exactly, not as a look-alike
        assert type(decode_value(encode_value(value))) is type(value)

    def test_numpy_scalars_unwrap(self):
        import numpy as np

        assert decode_value(encode_value(np.int64(7))) == 7
        assert isinstance(decode_value(encode_value(np.float64(1.5))), float)

    def test_unencodable_value_raises(self):
        with pytest.raises(WireFormatError, match="cannot encode"):
            encode_value(object())

    def test_malformed_payload_raises(self):
        with pytest.raises(WireFormatError, match="malformed wire value"):
            decode_value({"__kind__": "set", "items": []})


# ---------------------------------------------------------------------------
# Error discipline
# ---------------------------------------------------------------------------
class TestErrors:
    @pytest.fixture()
    def payload(self, themis, compiler):
        plan = compiler.compile(golden_queries()["point"])
        return serialize_plan(plan)

    def test_version_skew_raises(self, payload):
        payload["version"] = WIRE_FORMAT_VERSION + 1
        with pytest.raises(WireFormatError, match="version mismatch"):
            deserialize_plan(payload)

    def test_wrong_format_tag_raises(self, payload):
        payload["format"] = "themis/other"
        with pytest.raises(WireFormatError, match="not a plan payload"):
            deserialize_plan(payload)

    def test_unknown_node_tag_raises(self, payload):
        payload["root"]["node"] = "teleport"
        with pytest.raises(WireFormatError, match="unknown plan node tag"):
            deserialize_plan(payload)

    def test_unknown_query_tag_raises(self, payload):
        payload["query"]["query"] = "recursive-cte"
        with pytest.raises(WireFormatError, match="unknown query tag"):
            deserialize_plan(payload)

    def test_missing_field_raises(self, payload):
        del payload["key"]
        with pytest.raises(WireFormatError, match="missing field"):
            deserialize_plan(payload)

    def test_invalid_json_raises(self):
        with pytest.raises(WireFormatError, match="not valid JSON"):
            plan_from_json("{not json")

    def test_cross_schema_key_mismatch_raises(self, payload):
        # A receiver whose B-domain is missing the literal 2 buckets the
        # point query's B = 2 as OUT_OF_DOMAIN -> canonical keys disagree ->
        # loud error, not a silently split cache.
        other_schema = Schema(
            (
                Attribute("A", Domain((0, 1, 2))),
                Attribute("B", Domain((0, 1))),
                Attribute("C", Domain((0, 1))),
            )
        )
        other = PlanCompiler(other_schema)
        with pytest.raises(WireFormatError, match="key mismatch"):
            deserialize_plan(payload, other)


# ---------------------------------------------------------------------------
# Golden-file compatibility
# ---------------------------------------------------------------------------
class TestGoldenCompatibility:
    @pytest.fixture(scope="class")
    def fixture(self):
        return json.loads(GOLDEN_PATH.read_text())

    def test_golden_version_matches_code(self, fixture):
        assert fixture["wire_format_version"] == WIRE_FORMAT_VERSION, (
            "WIRE_FORMAT_VERSION moved without regenerating the golden file; "
            "run `python tests/golden_plans.py` and commit the new fixture"
        )

    def test_encoding_unchanged_without_version_bump(self, themis, fixture):
        """The loud tripwire: encoding drift requires a version increment.

        If this fails and you *did* change the wire encoding on purpose:
        bump ``WIRE_FORMAT_VERSION``, regenerate with
        ``python tests/golden_plans.py``, and note the break in the docs.
        If you didn't mean to change the encoding, the diff below is a
        compatibility break reaching every serialized plan in flight.
        """
        plans = golden_plans(themis.sample.schema)
        assert set(plans) == set(fixture["plans"]), (
            "golden plan set drifted from tests/golden_plans.py"
        )
        for name, plan in plans.items():
            produced = json.loads(plan_to_json(plan))
            assert produced == fixture["plans"][name], (
                f"wire encoding of {name!r} changed but WIRE_FORMAT_VERSION "
                f"is still {WIRE_FORMAT_VERSION}: bump the version and "
                f"regenerate tests/data/plan_wire_v1.json"
            )

    def test_golden_payloads_decode_to_live_plans(self, themis, compiler, fixture):
        plans = golden_plans(themis.sample.schema)
        for name, payload in fixture["plans"].items():
            rebuilt = deserialize_plan(payload, compiler)
            assert rebuilt.key == plans[name].key
