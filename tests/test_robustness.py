"""Robustness tests: noisy aggregates and end-to-end integration invariants.

The paper notes (Sec. 3) that population aggregates "do not need to be exact"
— they may be perturbed, e.g. for differential privacy — and Themis still
treats them as constraints.  These tests check that the pipeline degrades
gracefully with noisy aggregates and that end-to-end invariants hold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregates import AggregateQuery, AggregateSet
from repro.core import Themis, ThemisConfig
from repro.metrics import percent_difference
from repro.query import GroupByQuery
from repro.reweighting import IPFReweighter


def _noisy_aggregates(aggregates: AggregateSet, scale: float, seed: int) -> AggregateSet:
    rng = np.random.default_rng(seed)
    return AggregateSet(
        aggregate.perturbed(scale, rng) for aggregate in aggregates
    )


class TestNoisyAggregates:
    def test_ipf_with_noisy_aggregates_still_beats_uniform(
        self, correlated_population, biased_correlated_sample, correlated_aggregates
    ):
        noisy = _noisy_aggregates(correlated_aggregates, scale=20.0, seed=5)
        weighted = IPFReweighter(max_iterations=60).reweight(
            biased_correlated_sample, noisy
        )
        truth = correlated_population.value_counts(["A"])
        estimated = weighted.value_counts(["A"], weighted=True)
        uniform_scale = correlated_population.n_rows / biased_correlated_sample.n_rows
        uniform = {
            key: value * uniform_scale
            for key, value in biased_correlated_sample.value_counts(["A"]).items()
        }
        noisy_error = sum(
            abs(estimated.get(key, 0.0) - value) for key, value in truth.items()
        )
        uniform_error = sum(
            abs(uniform.get(key, 0.0) - value) for key, value in truth.items()
        )
        assert noisy_error < uniform_error

    def test_themis_fits_with_noisy_aggregates(
        self, biased_correlated_sample, correlated_aggregates
    ):
        noisy = _noisy_aggregates(correlated_aggregates, scale=30.0, seed=9)
        themis = Themis(
            ThemisConfig(seed=0, n_generated_samples=3, generated_sample_size=300)
        )
        themis.load_sample(biased_correlated_sample)
        themis.add_aggregates(noisy)
        model = themis.fit()
        assert model.weighted_sample.total_weight() > 0
        for node in model.network.nodes:
            assert model.network.cpt(node).is_normalized()


class TestEndToEndInvariants:
    @pytest.fixture
    def model(self, biased_correlated_sample, correlated_aggregates):
        themis = Themis(
            ThemisConfig(seed=2, n_generated_samples=4, generated_sample_size=500)
        )
        themis.load_sample(biased_correlated_sample)
        themis.add_aggregates(correlated_aggregates)
        return themis.fit()

    def test_group_by_total_matches_population_size(self, model):
        """The hybrid GROUP BY over one covered attribute sums to ~n."""
        result = model.hybrid_evaluator.group_by(GroupByQuery(group_by=("A",)))
        assert sum(result.as_dict().values()) == pytest.approx(
            model.population_size, rel=0.15
        )

    def test_point_answers_are_non_negative(self, model):
        for a in (0, 1, 2):
            for b in (0, 1, 2):
                assert model.hybrid_evaluator.point({"A": a, "B": b}) >= 0.0

    def test_point_answers_bounded_by_population(self, model):
        for a in (0, 1, 2):
            assert model.hybrid_evaluator.point({"A": a}) <= model.population_size * 1.05

    def test_aggregate_marginals_respected_by_hybrid(self, model, correlated_population):
        """Answers for the aggregate-covered attribute A are close to the truth."""
        for a in (0, 1, 2):
            truth = correlated_population.count({"A": a})
            estimate = model.hybrid_evaluator.point({"A": a})
            assert percent_difference(truth, estimate) < 30

    def test_bn_and_sample_evaluators_agree_on_total_mass(self, model):
        bn_total = sum(
            model.bayes_net_evaluator.group_by(GroupByQuery(group_by=("A",)))
            .as_dict()
            .values()
        )
        sample_total = model.weighted_sample.total_weight()
        assert bn_total == pytest.approx(sample_total, rel=0.2)
