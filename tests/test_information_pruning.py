"""Tests for information-theoretic utilities and aggregate pruning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import (
    AggregateQuery,
    AggregateSet,
    RandomAggregateSelector,
    TCherryAggregateSelector,
    TopScoreAggregateSelector,
    aggregates_from_population,
    candidate_attribute_sets,
    cluster_separator_score,
    entropy_of_aggregate,
    entropy_of_distribution,
    entropy_of_relation,
    information_content_of_aggregate,
    information_content_of_relation,
    kl_divergence,
    mutual_information_of_aggregate,
    prune_aggregates,
)
from repro.exceptions import AggregateError
from repro.schema import Attribute, Domain, Relation, Schema


def _independent_aggregate() -> AggregateQuery:
    """A 2D aggregate whose attributes are exactly independent."""
    groups = {}
    for a in ("x", "y"):
        for b in ("p", "q"):
            groups[(a, b)] = 25.0
    return AggregateQuery(("a", "b"), groups)


def _dependent_aggregate() -> AggregateQuery:
    """A 2D aggregate with perfectly dependent attributes."""
    return AggregateQuery(("a", "b"), {("x", "p"): 50.0, ("y", "q"): 50.0})


class TestEntropy:
    def test_uniform_entropy(self):
        assert entropy_of_distribution({"a": 0.5, "b": 0.5}) == pytest.approx(np.log(2))

    def test_degenerate_entropy_is_zero(self):
        assert entropy_of_distribution({"a": 1.0, "b": 0.0}) == 0.0

    def test_empty_distribution(self):
        assert entropy_of_distribution({}) == 0.0

    def test_entropy_of_aggregate_marginalizes(self, paper_population):
        gamma2 = AggregateQuery.from_relation(paper_population, ["o_st", "d_st"])
        h_origin = entropy_of_aggregate(gamma2, ["o_st"])
        assert 0 < h_origin <= np.log(3) + 1e-9

    def test_entropy_of_relation_matches_aggregate(self, paper_population):
        gamma = AggregateQuery.from_relation(paper_population, ["date"])
        assert entropy_of_relation(paper_population, ["date"]) == pytest.approx(
            entropy_of_aggregate(gamma)
        )


class TestInformationContent:
    def test_independent_attributes_have_zero_information(self):
        assert information_content_of_aggregate(_independent_aggregate()) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_dependent_attributes_have_positive_information(self):
        assert information_content_of_aggregate(_dependent_aggregate()) > 0.5

    def test_mutual_information_requires_two_dimensions(self, paper_population):
        gamma1 = AggregateQuery.from_relation(paper_population, ["date"])
        with pytest.raises(AggregateError):
            mutual_information_of_aggregate(gamma1)

    def test_relation_information_content_non_negative(self, correlated_population):
        value = information_content_of_relation(correlated_population, ["A", "B"])
        assert value >= 0.0

    def test_cluster_separator_score_requires_subset(self):
        aggregate = _dependent_aggregate()
        with pytest.raises(AggregateError):
            cluster_separator_score(aggregate, ("missing",))

    def test_cluster_separator_score_single_separator(self):
        aggregate = _dependent_aggregate()
        score = cluster_separator_score(aggregate, ("a",))
        assert score == pytest.approx(information_content_of_aggregate(aggregate))


class TestKLDivergence:
    def test_identical_distributions(self):
        p = {"a": 0.3, "b": 0.7}
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_divergence_positive_for_different_distributions(self):
        assert kl_divergence({"a": 0.9, "b": 0.1}, {"a": 0.1, "b": 0.9}) > 0.0

    def test_missing_support_stays_finite(self):
        assert np.isfinite(kl_divergence({"a": 1.0}, {"b": 1.0}))


class TestPruning:
    @pytest.fixture
    def candidates(self, correlated_population) -> AggregateSet:
        sets = candidate_attribute_sets(["A", "B", "C"], 2)
        return aggregates_from_population(correlated_population, sets)

    def test_candidate_attribute_sets(self):
        assert candidate_attribute_sets(["a", "b", "c"], 2) == [
            ("a", "b"),
            ("a", "c"),
            ("b", "c"),
        ]
        assert candidate_attribute_sets(["a"], 2) == []

    def test_tcherry_respects_budget(self, candidates):
        selected = TCherryAggregateSelector().select(candidates, 2)
        assert len(selected) == 2

    def test_tcherry_prefers_informative_clusters(self, candidates):
        """The most correlated pair (A, B) should be chosen first."""
        selected = TCherryAggregateSelector().select(candidates, 1)
        assert set(selected[0].attributes) in ({"A", "B"}, {"B", "C"})

    def test_tcherry_zero_budget(self, candidates):
        assert len(TCherryAggregateSelector().select(candidates, 0)) == 0

    def test_tcherry_budget_larger_than_candidates(self, candidates):
        selected = TCherryAggregateSelector().select(candidates, 10)
        assert len(selected) == len(candidates)

    def test_random_selector_is_seeded(self, candidates):
        first = RandomAggregateSelector(seed=3).select(candidates, 2)
        second = RandomAggregateSelector(seed=3).select(candidates, 2)
        assert [a.attributes for a in first] == [a.attributes for a in second]

    def test_top_score_selector(self, candidates):
        selected = TopScoreAggregateSelector().select(candidates, 1)
        assert len(selected) == 1

    def test_prune_aggregates_dispatch(self, candidates):
        assert len(prune_aggregates(candidates, 2, method="t-cherry")) == 2
        assert len(prune_aggregates(candidates, 2, method="random", seed=1)) == 2
        assert len(prune_aggregates(candidates, 2, method="top-score")) == 2

    def test_prune_aggregates_unknown_method(self, candidates):
        with pytest.raises(AggregateError):
            prune_aggregates(candidates, 2, method="bogus")

    def test_negative_budget_rejected(self, candidates):
        with pytest.raises(AggregateError):
            prune_aggregates(candidates, -1)

    def test_no_duplicate_clusters_selected(self, candidates):
        selected = TCherryAggregateSelector().select(candidates, 3)
        clusters = [frozenset(a.attributes) for a in selected]
        assert len(clusters) == len(set(clusters))


@settings(max_examples=20, deadline=None)
@given(
    probabilities=st.lists(st.floats(0.01, 1.0), min_size=2, max_size=8),
)
def test_entropy_bounds(probabilities):
    """Property: 0 <= H(p) <= log(k)."""
    distribution = {i: p for i, p in enumerate(probabilities)}
    entropy = entropy_of_distribution(distribution)
    assert 0.0 <= entropy <= np.log(len(probabilities)) + 1e-9
