"""Tests for the observability layer (``repro.obs``).

Covers four guarantees:

* the metric-name and histogram-bucket surface is frozen (renames fail here);
* spans, tracers, and the metrics registry behave as documented, and the
  null tracer is a true no-op;
* traced batches account for every plan slot (deduped plans appear as
  fan-out children) and the trace's counters agree with the registry;
* serving counters can no longer drift: ``ServingStatistics`` and every
  ``BatchResult.optimizer`` dict are readings of one registry, and agree
  after mixed single/batch traffic with a mid-session refit.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry, Tracer, names
from repro.obs.trace import NULL_TRACER


# ---------------------------------------------------------------------------
# Satellite 6: the names/buckets surface is frozen
# ---------------------------------------------------------------------------
class TestFrozenSurface:
    def test_latency_buckets_are_frozen(self):
        assert isinstance(names.LATENCY_BUCKETS, tuple)
        assert len(names.LATENCY_BUCKETS) == 31
        assert names.LATENCY_BUCKETS[0] == 1e-6
        assert names.LATENCY_BUCKETS[1] == 2e-6
        assert names.LATENCY_BUCKETS[-1] == 1e-6 * 2**30
        # strictly increasing
        assert all(
            a < b for a, b in zip(names.LATENCY_BUCKETS, names.LATENCY_BUCKETS[1:])
        )

    def test_counter_names_are_frozen(self):
        # Renaming any of these is a breaking change to dashboards and CI
        # assertions; update this test only as a deliberate rename.
        assert names.QUERIES_SERVED == "serving.queries_served"
        assert names.BATCHES_SERVED == "serving.batches_served"
        assert names.TOTAL_SECONDS == "serving.total_seconds"
        assert names.INVALIDATIONS == "serving.invalidations"
        assert names.ROUTE_PREFIX == "serving.route."
        assert names.BN_POINTS_BATCHED == "serving.bn_points_batched"
        assert names.BN_POINTS_SINGLE == "serving.bn_points_single"
        assert names.PLANS_OPTIMIZED == "serving.plans_optimized"
        assert names.OPTIMIZER_PREFIX == "optimizer."
        assert names.BN_ELIMINATION_PASSES == "bn.elimination_passes"
        assert names.BN_FACTOR_CACHE_HITS == "bn.factor_cache_hits"
        assert names.BN_FACTOR_CACHE_MISSES == "bn.factor_cache_misses"
        assert names.CACHE_PREFIX == "cache."
        assert names.QUERY_SECONDS == "latency.query_seconds"
        assert names.BATCH_SECONDS == "latency.batch_seconds"
        assert names.STAGE_PREFIX == "latency.stage."

    def test_optimizer_counters_match_optimizer_stats(self):
        from repro.plan import OptimizerStats

        assert names.OPTIMIZER_COUNTERS == tuple(OptimizerStats().as_dict())

    def test_stage_and_tier_names_are_frozen(self):
        assert names.BATCH_STAGES == (
            "compile",
            "warm-samples",
            "bn-dispatch",
            "columnar",
            "cache-probe",
        )
        assert names.CACHE_TIERS == ("result", "plan", "inference", "mask", "join_side")

    def test_name_helpers(self):
        assert names.route_counter("sample") == "serving.route.sample"
        assert names.optimizer_counter("masks_shared") == "optimizer.masks_shared"
        assert names.cache_gauge("result", "hits") == "cache.result.hits"
        assert names.stage_histogram("compile") == "latency.stage.compile"

    def test_governance_names_are_frozen(self):
        # The resource-governance surface: dashboards, the governance chaos
        # experiment, and the smoke benchmark all key on these strings.
        assert names.GOVERNANCE_PREFIX == "governance."
        assert names.GOVERNANCE_CACHE_BYTES == "governance.cache_bytes"
        assert (
            names.GOVERNANCE_CACHE_BYTES_HIGH_WATER
            == "governance.cache_bytes_high_water"
        )
        assert names.GOVERNANCE_BUDGET_BYTES == "governance.budget_bytes"
        assert names.GOVERNANCE_PRESSURE_LEVEL == "governance.pressure_level"
        assert names.GOVERNANCE_EVICTIONS == "governance.evictions"
        assert names.GOVERNANCE_EVICTED_BYTES == "governance.evicted_bytes"
        assert names.GOVERNANCE_FLUSHES == "governance.flushes"
        assert (
            names.GOVERNANCE_CACHE_ADMISSION_REJECTIONS
            == "governance.cache_admission_rejections"
        )
        assert names.GOVERNANCE_REQUESTS_ADMITTED == "governance.requests_admitted"
        assert names.GOVERNANCE_REQUESTS_REJECTED == "governance.requests_rejected"
        assert names.GOVERNANCE_REJECTED_PREFIX == "governance.rejected."
        assert names.GOVERNANCE_CANCELLED == "governance.cancelled"
        assert names.GOVERNANCE_DEADLINE_EXCEEDED == "governance.deadline_exceeded"
        assert names.GOVERNANCE_BREAKER_OPENED == "governance.breaker.opened"
        assert names.GOVERNANCE_BREAKER_REJECTIONS == "governance.breaker.rejections"
        assert (
            names.GOVERNANCE_BREAKER_PROBES == "governance.breaker.half_open_probes"
        )
        assert names.GOVERNANCE_CACHE_GAUGE_PREFIX == "governance.cache."
        assert (
            names.governed_cache_gauge("result") == "governance.cache.result.bytes"
        )
        assert names.rejected_counter("background") == "governance.rejected.background"


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(7)
        assert registry.value("a") == 3
        assert registry.value("g") == 7
        assert registry.value("missing") == 0
        assert registry.value("missing", default=None) is None

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("a").inc(-1)

    def test_counters_with_prefix(self):
        registry = MetricsRegistry()
        registry.counter("serving.route.sample").inc(4)
        registry.counter("serving.route.hybrid").inc()
        registry.counter("other").inc()
        assert registry.counters_with_prefix("serving.route.") == {
            "sample": 4,
            "hybrid": 1,
        }

    def test_histogram_percentiles_use_bucket_upper_bounds(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in (1.5e-6, 1.5e-6, 3e-6, 100e-6):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.total == pytest.approx(106e-6)
        # 1.5us lands in the (1us, 2us] bucket -> upper bound 2us.
        assert histogram.percentile(0.5) == pytest.approx(2e-6)
        assert histogram.percentile(0.99) == pytest.approx(128e-6)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["max"] == pytest.approx(100e-6)

    def test_histogram_overflow_reports_max(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        histogram.record(10_000.0)  # beyond the last bucket bound
        assert histogram.percentile(0.5) == pytest.approx(10_000.0)

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(5)
        registry.histogram("h").record(1e-3)
        snapshot = registry.as_dict()
        assert snapshot["counters"]["a"] == 5
        assert snapshot["histograms"]["h"]["count"] == 1
        registry.reset()
        assert registry.value("a") == 0
        assert registry.histogram("h").count == 0


# ---------------------------------------------------------------------------
# Spans and tracers
# ---------------------------------------------------------------------------
class TestTracer:
    def test_span_tree_shape_and_walk_order(self):
        tracer = Tracer()
        with tracer.span("root", kind="test") as root:
            with tracer.span("left"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("right") as right:
                right.count(widgets=3)
        assert [span.name for span in root.walk()] == ["root", "left", "leaf", "right"]
        assert root.attributes == {"kind": "test"}
        assert root.find("right").counters == {"widgets": 3}
        assert root.counter_total("widgets") == 3
        assert root.seconds >= sum(child.seconds for child in root.children)

    def test_structural_children_have_zero_duration(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            child = parent.child("slot", slot=0)
        assert child.seconds == 0.0
        assert child in parent.children

    def test_render_mentions_names_and_counters(self):
        tracer = Tracer()
        with tracer.span("query", route="sample") as root:
            with tracer.span("mask") as mask:
                mask.count(mask_hits=2)
        text = root.render()
        assert "query" in text and "route=sample" in text
        assert "mask_hits=2" in text

    def test_export_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        path = tmp_path / "trace.jsonl"
        count = tracer.export_jsonl(path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert count == len(records) == 2
        by_name = {record["name"]: record for record in records}
        assert by_name["b"]["parent"] == by_name["a"]["id"]

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", attr=1) as span:
            span.set(x=1).count(y=2)
            child = span.child("slot")
        assert span is child  # one stateless singleton throughout
        assert NULL_TRACER.roots == []
        assert list(span.walk()) == []


# ---------------------------------------------------------------------------
# Acceptance: explain="analyze" and traced serving
# ---------------------------------------------------------------------------
class TestExplainAnalyze:
    def test_stage_times_sum_to_end_to_end(self, serving_themis):
        explained = serving_themis.query(
            "SELECT COUNT(*) FROM sample WHERE A = 0", explain="analyze"
        )
        root = explained.trace
        assert root is not None and root.name == "query"
        assert {child.name for child in root.children} == {"compile", "execute"}
        stage_sum = sum(child.seconds for child in root.children)
        # The stages are timed back-to-back inside the root, so they can
        # never exceed it and must account for nearly all of it.
        assert stage_sum <= root.seconds
        assert stage_sum >= 0.5 * root.seconds
        # And the answer matches the untraced path exactly.
        assert explained.result == serving_themis.query(
            "SELECT COUNT(*) FROM sample WHERE A = 0"
        )

    def test_explain_analyze_renders_plan_and_trace(self, serving_themis):
        explained = serving_themis.query(
            "SELECT A, COUNT(*) FROM sample GROUP BY A", explain="analyze"
        )
        text = explained.explain_analyze()
        assert "Aggregate" in text  # the operator tree
        assert "query" in text and "compile" in text  # the span tree

    def test_plain_explain_has_no_trace(self, serving_themis):
        from repro.exceptions import ThemisError

        explained = serving_themis.query(
            "SELECT COUNT(*) FROM sample WHERE A = 0", explain=True
        )
        assert explained.trace is None
        with pytest.raises(ThemisError):
            explained.explain_analyze()


WORKLOAD = [
    "SELECT COUNT(*) FROM sample WHERE A = 0",
    "SELECT COUNT(*) FROM sample WHERE A = 0 AND B = 1",
    "SELECT COUNT(*) FROM sample WHERE B = 1 AND A = 0",  # deduped reorder
    "SELECT A, COUNT(*) FROM sample GROUP BY A",
    "SELECT B, COUNT(*) FROM sample WHERE C = 1 GROUP BY B",
    "SELECT AVG(B) FROM sample WHERE A = 0",
    "SELECT COUNT(*) FROM sample WHERE A = 2 AND B = 2 AND C = 0",
]


class TestTracedServing:
    def test_untraced_session_attaches_no_trees(self, fresh_serving_themis):
        session = fresh_serving_themis.serve()
        outcome = session.execute_with_outcome(WORKLOAD[0])
        batch = session.execute_batch(WORKLOAD)
        assert outcome.trace is None
        assert batch.trace is None

    def test_batch_trace_has_stage_spans(self, fresh_serving_themis):
        session = fresh_serving_themis.serve(trace=True)
        batch = session.execute_batch(WORKLOAD)
        root = batch.trace
        assert root.name == "batch"
        child_names = [child.name for child in root.children]
        for stage in (names.STAGE_COMPILE, names.STAGE_ROUTE, names.STAGE_CACHE_PROBE):
            assert stage in child_names

    def test_trace_counters_match_serving_statistics(self, fresh_serving_themis):
        """Acceptance: the span trees' cache counters equal the statistics."""
        session = fresh_serving_themis.serve(trace=True)
        cold = session.execute_batch(WORKLOAD)
        warm = session.execute_batch(WORKLOAD)
        hits = sum(b.trace.counter_total("result_cache_hits") for b in (cold, warm))
        misses = sum(b.trace.counter_total("result_cache_misses") for b in (cold, warm))
        cache_stats = session.cache_statistics()
        assert hits == cache_stats["result_cache"]["hits"]
        assert misses == cache_stats["result_cache"]["misses"]
        # Deduped plans never probe (they share the first outcome), so the
        # warm replay probes once per distinct plan, all hits.
        deduped = sum(1 for outcome in warm if outcome.deduplicated)
        assert warm.trace.counter_total("result_cache_hits") == len(WORKLOAD) - deduped
        assert cold.cache_hits == 0 and warm.cache_hits == len(WORKLOAD)

    # -- Satellite 3: every plan slot is accounted for ------------------
    def test_optimized_batch_accounts_for_every_slot(self, fresh_serving_themis):
        # Run the whole workload through the columnar engine's optimized
        # batch path directly: every query lands in a fused unit.
        engine = fresh_serving_themis.model.sample_evaluator.engine
        tracer = Tracer()
        answers = engine.execute_batch(WORKLOAD, tracer=tracer)
        assert len(answers) == len(WORKLOAD)
        unit_spans = [
            span
            for root in tracer.roots
            for span in root.walk()
            if span.name.startswith("unit:")
        ]
        slot_spans = [
            child
            for unit in unit_spans
            for child in unit.children
            if child.name == "slot"
        ]
        fan_out_spans = [
            grandchild
            for slot in slot_spans
            for grandchild in slot.children
            if grandchild.name == "fan-out"
        ]
        # Slots cover the schedule; slots + fan-outs cover the whole batch
        # (deduped plans reappear as fan-out children of their slot).
        assert len(slot_spans) + len(fan_out_spans) == len(WORKLOAD)
        assert len(fan_out_spans) >= 1  # the reordered conjunction dedupes

    def test_optimize_span_counters_match_batch_optimizer(self, fresh_serving_themis):
        session = fresh_serving_themis.serve(trace=True)
        batch = session.execute_batch(WORKLOAD)
        optimize_spans = batch.trace.spans("optimize")
        assert optimize_spans, "an optimized batch must record optimize spans"
        # The optimize spans snapshot the schedule-build counters; the two
        # execution-time counters (join-side cache hits, BN dispatches
        # saved) accrue afterwards and are covered by the registry check.
        build_time = tuple(
            field
            for field in names.OPTIMIZER_COUNTERS
            if field not in ("join_side_cache_hits", "bn_sample_dispatches_saved")
        )
        for field in build_time:
            span_total = sum(span.counters.get(field, 0) for span in optimize_spans)
            assert span_total == batch.optimizer[field], field
        # ... and the registry totals equal the batch delta on a fresh session.
        for field in names.OPTIMIZER_COUNTERS:
            assert (
                session.metrics.value(names.optimizer_counter(field))
                == batch.optimizer[field]
            )

    def test_batch_stage_histograms_are_fed(self, fresh_serving_themis):
        session = fresh_serving_themis.serve()
        session.execute_batch(WORKLOAD)
        session.execute_batch(WORKLOAD)
        for stage in names.BATCH_STAGES:
            histogram = session.metrics.histogram(names.stage_histogram(stage))
            assert histogram.count == 2, stage


# ---------------------------------------------------------------------------
# Satellite 1: counter drift is impossible by construction
# ---------------------------------------------------------------------------
class TestCounterDrift:
    def test_statistics_agree_after_mixed_traffic_and_refit(self, fresh_serving_themis):
        themis = fresh_serving_themis
        session = themis.serve(trace=True)

        batches = []
        batches.append(session.execute_batch(WORKLOAD))
        session.execute_with_outcome(WORKLOAD[0])
        session.execute_with_outcome(WORKLOAD[3])
        batches.append(session.execute_batch(WORKLOAD[:4]))

        # Mid-session refit: generation moves, caches invalidate, and the
        # session keeps counting into the same registry.
        themis.refit()
        batches.append(session.execute_batch(WORKLOAD))
        session.execute_with_outcome(WORKLOAD[1])

        stats = session.statistics
        assert stats.invalidations == 1
        assert stats.batches_served == len(batches)
        assert stats.queries_served == sum(len(b) for b in batches) + 3

        # The per-batch optimizer deltas must sum exactly to the
        # session-lifetime optimizer counters: one registry, no drift.
        for field in names.OPTIMIZER_COUNTERS[2:]:  # the 8 public counters
            summed = sum(batch.optimizer[field] for batch in batches)
            assert getattr(stats, field) == summed, field

        # plans_optimized likewise equals the per-batch outcome counts.
        assert stats.plans_optimized == sum(b.optimized_plans for b in batches)

        # And as_dict round-trips the same numbers.
        as_dict = stats.as_dict()
        assert as_dict["queries_served"] == stats.queries_served
        assert as_dict["optimizer"]["masks_shared"] == stats.masks_shared

    def test_single_and_batch_route_counters_share_registry(self, fresh_serving_themis):
        session = fresh_serving_themis.serve()
        session.execute(WORKLOAD[0])
        session.execute_batch(WORKLOAD)
        total_by_route = sum(session.statistics.route_counts.values())
        assert total_by_route == session.statistics.queries_served


# ---------------------------------------------------------------------------
# Satellite 2: per-window cache statistics
# ---------------------------------------------------------------------------
class TestCacheWindows:
    def test_window_hit_rates_reset_without_touching_lifetime(self, fresh_serving_themis):
        session = fresh_serving_themis.serve()
        session.execute_batch(WORKLOAD)
        lifetime_before = session.cache_statistics()

        session.reset_cache_window()
        session.execute_batch(WORKLOAD)  # warm replay: all result-cache hits

        window = session.cache_statistics(window=True)
        lifetime = session.cache_statistics()

        assert window["result_cache"]["hits"] == len(WORKLOAD) - 1  # one dedup
        assert window["result_cache"]["misses"] == 0
        assert window["result_cache"]["hit_rate"] == 1.0
        # Lifetime counters keep accumulating, untouched by the window.
        assert (
            lifetime["result_cache"]["hits"]
            == lifetime_before["result_cache"]["hits"] + window["result_cache"]["hits"]
        )
        # Sizes are reported as current values, not deltas.
        assert window["result_cache"]["entries"] == lifetime["result_cache"]["entries"]

    def test_window_before_reset_is_lifetime(self, fresh_serving_themis):
        session = fresh_serving_themis.serve()
        session.execute_batch(WORKLOAD)
        assert (
            session.cache_statistics(window=True)["result_cache"]["hits"]
            == session.cache_statistics()["result_cache"]["hits"]
        )

    def test_mask_cache_tier_is_reported(self, fresh_serving_themis):
        session = fresh_serving_themis.serve()
        session.execute_batch(WORKLOAD)
        stats = session.cache_statistics()
        assert "mask_cache" in stats
        assert stats["mask_cache"]["hits"] + stats["mask_cache"]["misses"] > 0

    def test_cache_gauges_synced_into_registry(self, fresh_serving_themis):
        session = fresh_serving_themis.serve()
        session.execute_batch(WORKLOAD)
        stats = session.cache_statistics()
        assert (
            session.metrics.value(names.cache_gauge("result", "hits"))
            == stats["result_cache"]["hits"]
        )
        assert (
            session.metrics.value(names.cache_gauge("mask", "misses"))
            == stats["mask_cache"]["misses"]
        )

    def test_reset_statistics_on_kernel_caches(self, fresh_serving_themis):
        engine = fresh_serving_themis.model.sample_evaluator.engine
        engine.execute(WORKLOAD[0])
        assert engine.mask_cache.hits + engine.mask_cache.misses > 0
        cached = engine.mask_cache.statistics()["cached_masks"]
        assert cached > 0
        engine.mask_cache.reset_statistics()
        assert engine.mask_cache.hits == 0 and engine.mask_cache.misses == 0
        # Entries survive: only the counters reset.
        assert engine.mask_cache.statistics()["cached_masks"] == cached
