"""A naive row-at-a-time reference engine for the differential harness.

This module reimplements the *semantics* of the weighted query engine in
deliberately simple Python — per-row predicate evaluation, sequential
per-group accumulation, list-based HAVING / window / ORDER BY / LIMIT
pipelines — sharing no code with the columnar kernels or the plan IR.
``tests/test_sql_differential.py`` asserts exact (``==``) equality between
this oracle and every real execution path over randomly generated queries.

Exactness is by construction, not tolerance.  The engine's float contract
(pinned by ``tests/test_plan_ir.py``) is:

* scalar reductions use numpy's pairwise summation over the masked rows in
  row order — the oracle rebuilds the identical operand array from its own
  row-at-a-time match list and reduces it with the same ``np.ndarray.sum``;
* grouped reductions scatter-add with ``np.bincount``, which accumulates
  C doubles sequentially in row order — bit-identical to the oracle's
  ``total = total + value`` Python-float loop;
* AVG divides the two, guarded to 0.0 for non-positive weight totals;
* the analytic pipeline only selects, sorts, ranks, and sequentially sums
  values produced above, so mirroring the order of those operations is
  enough for bit-identity.

Everything else — predicate bucketization, group ordering, rank/running-sum
semantics, column resolution — is re-derived from the documented semantics
in ``repro.query.ast`` and ``repro.plan.analytics``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.exceptions import QueryError
from repro.query import (
    AnalyticQuery,
    Comparison,
    GroupByQuery,
    PointQuery,
    Predicate,
    ScalarAggregateQuery,
)
from repro.schema import Relation
from repro.sql.engine import QueryResult, TableResult


class ReferenceEngine:
    """Row-at-a-time weighted query evaluation over one relation."""

    def __init__(self, relation: Relation):
        self._relation = relation
        self._weights = [float(w) for w in relation.weights]

    # ------------------------------------------------------------------
    # Predicate semantics (mirrors repro.query.ast.Predicate.mask)
    # ------------------------------------------------------------------
    def _row_matcher(self, predicate: Predicate):
        """Return ``code -> bool`` for one predicate on one attribute."""
        domain = self._relation.schema[predicate.attribute].domain
        comparison = predicate.comparison
        if comparison is Comparison.IN:
            raw = predicate.value
            values = raw if isinstance(raw, (list, tuple, set)) else [raw]
            codes = {domain.code_of(value) for value in values}
            codes.discard(None)
            return lambda code: code in codes
        code = domain.code_of(predicate.value)
        if comparison is Comparison.EQ:
            return lambda c: c == code if code is not None else False
        if comparison is Comparison.NE:
            return lambda c: True if code is None else c != code
        # Ordered comparisons run against the position of the largest domain
        # value not exceeding the literal.
        threshold = code
        if threshold is None:
            positions = [
                index
                for index, value in enumerate(domain.values)
                if value <= predicate.value
            ]
            threshold = max(positions) if positions else None
        if threshold is None:
            always = comparison in (Comparison.GT, Comparison.GE)
            return lambda c: always
        if comparison is Comparison.LT:
            return lambda c: c < threshold
        if comparison is Comparison.LE:
            return lambda c: c <= threshold
        if comparison is Comparison.GT:
            return lambda c: c > threshold
        if comparison is Comparison.GE:
            return lambda c: c >= threshold
        raise QueryError(f"unsupported comparison {comparison}")

    def _matching_rows(self, predicates) -> list[int]:
        """Indices of rows satisfying every predicate, in row order."""
        tests = [
            (self._relation.column(p.attribute), self._row_matcher(p))
            for p in predicates
        ]
        return [
            row
            for row in range(self._relation.n_rows)
            if all(matcher(int(column[row])) for column, matcher in tests)
        ]

    def _measure(self, attribute: str) -> list[float]:
        """Decoded numeric values of one column, as Python floats."""
        domain = self._relation.schema[attribute].domain
        lookup = [float(value) for value in domain.values]
        return [lookup[int(code)] for code in self._relation.column(attribute)]

    # ------------------------------------------------------------------
    # Scalar reductions (mirror the pairwise-sum contract of scalar_reduce)
    # ------------------------------------------------------------------
    def _scalar(self, function: str, attribute: str | None, rows: list[int]) -> float:
        weights = np.asarray([self._weights[row] for row in rows], dtype=np.float64)
        if function == "count":
            return float(weights.sum())
        measure = self._measure(attribute)
        products = np.asarray(
            [self._weights[row] * measure[row] for row in rows], dtype=np.float64
        )
        if function == "sum":
            return float(products.sum())
        if function == "avg":
            total = weights.sum()
            return float(products.sum() / total) if total > 0 else 0.0
        raise QueryError(f"unsupported aggregate function {function}")

    # ------------------------------------------------------------------
    # Grouped reductions (mirror the sequential-accumulation contract of
    # the bincount scatter-add)
    # ------------------------------------------------------------------
    def _grouped(
        self, group_by: tuple[str, ...], specs, rows: list[int]
    ) -> tuple[list[tuple[int, ...]], list[tuple[Any, ...]], list[list[float]]]:
        """Per-group values for several aggregate specs over one row set.

        Returns ``(codes, decoded, columns)``: the encoded group tuples in
        ascending order, the decoded group tuples aligned with them, and one
        value list per spec aligned the same way.  Groups whose weight total
        is not positive are dropped (matching the kernels' ``positive`` set,
        which is shared by every spec of a family).
        """
        key_columns = [self._relation.column(name) for name in group_by]
        group_rows: dict[tuple[int, ...], list[int]] = {}
        for row in rows:
            codes = tuple(int(column[row]) for column in key_columns)
            group_rows.setdefault(codes, []).append(row)

        totals: dict[tuple[int, ...], float] = {}
        for codes in group_rows:
            total = 0.0
            for row in group_rows[codes]:
                total = total + self._weights[row]
            totals[codes] = total
        ordered = sorted(codes for codes in group_rows if totals[codes] > 0)

        columns: list[list[float]] = []
        for spec in specs:
            function = spec.function.value
            if function == "count":
                columns.append([totals[codes] for codes in ordered])
                continue
            measure = self._measure(spec.attribute)
            sums: dict[tuple[int, ...], float] = {}
            for codes in ordered:
                value = 0.0
                for row in group_rows[codes]:
                    value = value + self._weights[row] * measure[row]
                sums[codes] = value
            if function == "sum":
                columns.append([sums[codes] for codes in ordered])
            elif function == "avg":
                columns.append([sums[codes] / totals[codes] for codes in ordered])
            else:
                raise QueryError(f"unsupported aggregate function {function}")

        domains = [self._relation.schema[name].domain for name in group_by]
        decoded = [
            tuple(domain.decode(code) for domain, code in zip(domains, codes))
            for codes in ordered
        ]
        return list(ordered), decoded, columns

    # ------------------------------------------------------------------
    # Query dispatch
    # ------------------------------------------------------------------
    def execute(self, query) -> float | QueryResult | TableResult:
        """Evaluate one AST query, returning the engine's result shape."""
        if isinstance(query, PointQuery):
            predicates = [
                Predicate(name, Comparison.EQ, value)
                for name, value in query.assignment
            ]
            return self._scalar("count", None, self._matching_rows(predicates))
        if isinstance(query, ScalarAggregateQuery):
            spec = query.aggregate
            return self._scalar(
                spec.function.value,
                spec.attribute,
                self._matching_rows(query.predicates),
            )
        if isinstance(query, GroupByQuery):
            _, decoded, columns = self._grouped(
                tuple(query.group_by),
                [query.aggregate],
                self._matching_rows(query.predicates),
            )
            return QueryResult(
                tuple(query.group_by), dict(zip(decoded, columns[0]))
            )
        if isinstance(query, AnalyticQuery):
            return self._analytic(query)
        raise QueryError(f"oracle does not support {type(query).__name__}")

    # ------------------------------------------------------------------
    # Analytic pipeline (independent list-based HAVING/window/sort/limit)
    # ------------------------------------------------------------------
    def _analytic(self, query: AnalyticQuery) -> TableResult:
        rows = self._matching_rows(query.predicates)
        specs = query.aggregates
        n_group = len(query.group_by)
        if query.group_by:
            codes, decoded, agg_columns = self._grouped(
                tuple(query.group_by), specs, rows
            )
        else:
            codes, decoded = [()], [()]
            agg_columns = [
                [self._scalar(spec.function.value, spec.attribute, rows)]
                for spec in specs
            ]

        def aggregate_column(target: str) -> int | None:
            for index, spec in enumerate(specs):
                if target == spec.label or target == spec.expression:
                    return n_group + index
            return None

        def resolve(target: str, windows: bool) -> int:
            if target in query.group_by:
                return query.group_by.index(target)
            column = aggregate_column(target)
            if column is not None:
                return column
            if windows:
                for index, window in enumerate(query.windows):
                    if target == window.alias:
                        return n_group + len(specs) + index
            raise QueryError(f"oracle cannot resolve column {target!r}")

        # ``selection`` holds base-row indexes; window value lists are
        # aligned with selection *positions*, mirroring the real pipeline.
        selection = list(range(len(decoded)))
        window_values: dict[int, list] = {}

        def key_value(column: int, position: int) -> float:
            base = selection[position]
            if column < n_group:
                return float(codes[base][column])
            index = column - n_group
            if index < len(specs):
                return float(agg_columns[index][base])
            return float(window_values[column][position])

        def sort_positions(
            partition: tuple[int, ...], order: tuple[tuple[int, bool], ...]
        ) -> list[int]:
            def sort_key(position: int) -> tuple:
                keys = [codes[selection[position]][column] for column in partition]
                for column, descending in order:
                    value = key_value(column, position)
                    keys.append(-value if descending else value)
                return tuple(keys)

            return sorted(range(len(selection)), key=sort_key)

        # HAVING
        if query.having:
            conditions = []
            for condition in query.having:
                column = aggregate_column(condition.target)
                if column is None:
                    raise QueryError(
                        f"oracle cannot resolve HAVING target {condition.target!r}"
                    )
                conditions.append((column, condition.comparison, float(condition.value)))

            def satisfies(position: int) -> bool:
                for column, comparison, threshold in conditions:
                    value = agg_columns[column - n_group][selection[position]]
                    if comparison is Comparison.EQ:
                        ok = value == threshold
                    elif comparison is Comparison.NE:
                        ok = value != threshold
                    elif comparison is Comparison.LT:
                        ok = value < threshold
                    elif comparison is Comparison.LE:
                        ok = value <= threshold
                    elif comparison is Comparison.GT:
                        ok = value > threshold
                    elif comparison is Comparison.GE:
                        ok = value >= threshold
                    else:
                        raise QueryError(f"unsupported HAVING comparison {comparison}")
                    if not ok:
                        return False
                return True

            selection = [
                selection[position]
                for position in range(len(selection))
                if satisfies(position)
            ]

        # Window functions
        for offset, window in enumerate(query.windows):
            output = n_group + len(specs) + offset
            partition = tuple(query.group_by.index(name) for name in window.partition_by)
            order = tuple(
                (resolve(key.target, windows=False), key.descending)
                for key in window.order_by
            )
            permutation = sort_positions(partition, order)
            values: list = [None] * len(selection)
            if window.function.value == "rank":
                previous_partition: Any = object()
                partition_start = 0
                rank = 1
                previous_key: Any = None
                for index, position in enumerate(permutation):
                    base = selection[position]
                    part = tuple(codes[base][column] for column in partition)
                    order_key = tuple(
                        key_value(column, position) for column, _ in order
                    )
                    if part != previous_partition:
                        previous_partition = part
                        partition_start = index
                        rank = 1
                        previous_key = order_key
                    elif order_key != previous_key:
                        rank = index - partition_start + 1
                        previous_key = order_key
                    values[position] = rank
            else:
                source = aggregate_column(window.target)
                if source is None:
                    raise QueryError(
                        f"oracle cannot resolve window source {window.target!r}"
                    )
                source_column = agg_columns[source - n_group]
                if window.order_by:
                    previous_partition = object()
                    accumulator = 0.0
                    for position in permutation:
                        base = selection[position]
                        part = tuple(codes[base][column] for column in partition)
                        if part != previous_partition:
                            previous_partition = part
                            accumulator = 0.0
                        accumulator = accumulator + float(source_column[base])
                        values[position] = accumulator
                else:
                    totals: dict[tuple, float] = {}
                    for position in permutation:
                        base = selection[position]
                        part = tuple(codes[base][column] for column in partition)
                        totals[part] = totals.get(part, 0.0) + float(source_column[base])
                    for position in permutation:
                        base = selection[position]
                        part = tuple(codes[base][column] for column in partition)
                        values[position] = totals[part]
            window_values[output] = values

        # ORDER BY
        if query.order_by:
            order = tuple(
                (resolve(key.target, windows=True), key.descending)
                for key in query.order_by
            )
            permutation = sort_positions((), order)
            selection = [selection[position] for position in permutation]
            for column, values in window_values.items():
                window_values[column] = [values[position] for position in permutation]

        # LIMIT
        if query.limit is not None:
            selection = selection[: query.limit]
            for column, values in window_values.items():
                window_values[column] = values[: query.limit]

        ordered_windows = [window_values[column] for column in sorted(window_values)]
        out_rows = []
        for position, base in enumerate(selection):
            row = list(decoded[base])
            row.extend(float(column[base]) for column in agg_columns)
            row.extend(column[position] for column in ordered_windows)
            out_rows.append(tuple(row))
        return TableResult(query.labels, out_rows, group_by=tuple(query.group_by))
