"""Fault tolerance: supervised respawn, retry/failover, deadline budgets.

Every chaos scenario here is **deterministic**: worker deaths are seeded
:class:`FaultInjector` schedules (kill at the Nth dispatch of a named
incarnation, die mid-refit, drop a reply or a heartbeat ping), so each test
replays the exact same crash at the exact same point.  The load-bearing
assertions are the same exact ``==`` bit-identity the healthy scale tier
proves, now *through* the failures: a killed worker is respawned from its
deterministic spec with the broadcast log replayed, lands on the same
generation, and the answers match a fault-free in-process oracle.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.exceptions import (
    DegradedModeError,
    DispatchTimeoutError,
    RetryableServingError,
    RetryExhaustedError,
    ServingOverloadError,
    ThemisError,
    WorkerCrashedError,
)
from repro.obs import names
from repro.obs.metrics import MetricsRegistry
from repro.plan import PlanCompiler
from repro.query.workload import MixedQueryWorkload
from repro.serving.scale import (
    FAULT_EXIT_CODE,
    AsyncServingFrontend,
    FaultEvent,
    FaultInjector,
    MicroBatcher,
    RequestOutcome,
    ShardRouter,
    SupervisedWorkerPool,
)
from repro.serving.scale.pool import _LIVE_POOLS
from repro.serving.stats import ServingStatistics

from worlds import build_fitted_themis

SWEEP_SEED = 421


@pytest.fixture(scope="module")
def themis():
    return build_fitted_themis()


@pytest.fixture(scope="module")
def sweep_queries(themis):
    workload = MixedQueryWorkload(themis.sample, seed=SWEEP_SEED)
    entries = workload.generate(n_point=4, n_scalar=4, n_group_by=4)
    return [entry.query for entry in entries]


@pytest.fixture(scope="module")
def expected(sweep_queries):
    oracle = build_fitted_themis()
    return oracle.execute_batch(sweep_queries).results()


def _supervised(themis, injector=None, **kwargs):
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("timeout", 30.0)
    kwargs.setdefault("backoff_base", 0.01)
    return SupervisedWorkerPool(themis, fault_injector=injector, **kwargs)


# ---------------------------------------------------------------------------
# Ring failover (pure routing, no processes)
# ---------------------------------------------------------------------------
class TestRingFailover:
    def _keys(self, themis, n=64):
        compiler = PlanCompiler(themis.sample.schema)
        workload = MixedQueryWorkload(themis.sample, seed=7)
        entries = workload.generate(n_point=n // 2, n_scalar=n // 4, n_group_by=n // 4)
        return [compiler.compile(entry.query).key for entry in entries]

    def test_live_home_shard_is_unaffected_by_masking(self, themis):
        router = ShardRouter(4)
        for key in self._keys(themis):
            home = router.shard_for(key)
            assert router.shard_for(key, live={0, 1, 2, 3}) == home

    def test_dead_shard_keys_spill_to_live_shards_only(self, themis):
        router = ShardRouter(4)
        live = {1, 2, 3}
        for key in self._keys(themis):
            rerouted = router.shard_for(key, live=live)
            assert rerouted in live
            if router.shard_for(key) != 0:
                # Only the dead shard's keys move.
                assert rerouted == router.shard_for(key)

    def test_keys_return_home_after_respawn(self, themis):
        router = ShardRouter(4)
        homes = [router.shard_for(key) for key in self._keys(themis)]
        # Failover is a pure function of (key, live set): restoring the full
        # live set restores the original assignment exactly.
        assert [
            router.shard_for(key, live={0, 1, 2, 3})
            for key in self._keys(themis)
        ] == homes

    def test_empty_live_set_is_an_error(self):
        router = ShardRouter(2)
        with pytest.raises(ValueError, match="no live shard"):
            router.shard_for_hash(12345, live=set())


# ---------------------------------------------------------------------------
# Fault schedules (no processes)
# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_seeded_schedule_is_reproducible(self):
        first = FaultInjector(seed=9).kill_each_shard_once(4, within_batches=6)
        second = FaultInjector(seed=9).kill_each_shard_once(4, within_batches=6)
        assert first.events == second.events
        assert {event.shard_id for event in first.events} == {0, 1, 2, 3}
        assert FaultInjector(seed=10).kill_each_shard_once(
            4, within_batches=6
        ).events != first.events

    def test_plan_slices_by_shard_and_incarnation(self):
        injector = (
            FaultInjector()
            .kill_at_batch(0, at=2)
            .kill_at_batch(0, at=1, incarnation=1)
            .drop_reply(1, at=3)
        )
        plan = injector.plan_for(0, incarnation=0)
        assert plan.on_batch(2).kind == "kill_at_batch"
        assert plan.on_batch(1) is None  # incarnation 1's event, not ours
        assert injector.plan_for(0, incarnation=1).on_batch(1) is not None
        assert injector.plan_for(1).on_batch(3).kind == "drop_reply"
        assert injector.plan_for(2) is None  # nothing scheduled: no plan

    def test_event_validation(self):
        with pytest.raises(ValueError, match="ordinal"):
            FaultEvent("kill_at_batch", 0, at=0)
        with pytest.raises(ValueError, match="incarnation"):
            FaultEvent("kill_at_batch", 0, incarnation=-1)


# ---------------------------------------------------------------------------
# Crash -> respawn -> bit-identity
# ---------------------------------------------------------------------------
class TestSupervisedRecovery:
    def test_kill_mid_batch_retries_to_bit_identical_answers(
        self, themis, sweep_queries, expected
    ):
        injector = FaultInjector().kill_at_batch(0, at=1).kill_at_batch(1, at=1)
        pool = _supervised(themis, injector)
        try:
            assert pool.execute_batch(sweep_queries) == expected
            metrics = pool.metrics
            assert metrics.counter(names.SCALE_FAULT_CRASHES).value == 2
            assert metrics.counter(names.SCALE_FAULT_RESPAWNS).value == 2
            assert metrics.counter(names.SCALE_FAULT_RETRIES).value >= 1
            assert metrics.histogram(names.SCALE_RESPAWN_SECONDS).count == 2
            # Both shards are on their first respawn, same generation.
            bodies = pool.describe()
            assert [body["incarnation"] for body in bodies] == [1, 1]
            assert len({body["generation"] for body in bodies}) == 1
            # A second pass runs clean on the respawned workers.
            assert pool.execute_batch(sweep_queries) == expected
            assert metrics.counter(names.SCALE_FAULT_CRASHES).value == 2
        finally:
            pool.close()

    def test_injected_kill_uses_the_fault_exit_code(self, themis, sweep_queries):
        pool = _supervised(themis, FaultInjector().kill_at_batch(0, at=1))
        try:
            doomed = pool._workers[0].process
            pool.execute_batch(sweep_queries)
            assert doomed.exitcode == FAULT_EXIT_CODE
        finally:
            pool.close()

    def test_kill_during_refit_broadcast_replays_to_same_generation(
        self, themis, sweep_queries, expected
    ):
        pool = _supervised(themis, FaultInjector().kill_at_refit(0, at=1))
        try:
            warm = pool.execute_batch(sweep_queries)
            generation = pool.refit()
            bodies = pool.describe()
            # Shard 0 died after refitting but before acknowledging; its
            # respawn replayed the logged refit and landed in agreement.
            assert [body["incarnation"] for body in bodies] == [1, 0]
            assert {body["generation"] for body in bodies} == {generation}
            assert pool.metrics.counter(
                names.SCALE_FAULT_REPLAYED_BROADCASTS
            ).value == 1
            assert pool.execute_batch(sweep_queries) == expected == warm
        finally:
            pool.close()

    def test_double_kill_same_shard_burns_two_incarnations(
        self, themis, sweep_queries, expected
    ):
        injector = (
            FaultInjector()
            .kill_at_batch(0, at=1, incarnation=0)
            .kill_at_batch(0, at=1, incarnation=1)
        )
        pool = _supervised(themis, injector)
        try:
            assert pool.execute_batch(sweep_queries) == expected
            assert pool.metrics.counter(names.SCALE_FAULT_CRASHES).value == 2
            assert pool.metrics.counter(names.SCALE_FAULT_RESPAWNS).value == 2
            incarnations = {
                body["shard_id"]: body["incarnation"] for body in pool.describe()
            }
            assert incarnations == {0: 2, 1: 0}
        finally:
            pool.close()

    def test_dead_shard_fails_over_on_the_ring(
        self, themis, sweep_queries, expected
    ):
        # No respawn budget: the first kill leaves shard 0 permanently dead,
        # so its keys must reroute to shard 1 — and still answer correctly.
        pool = _supervised(
            themis, FaultInjector().kill_at_batch(0, at=1), max_respawns=0
        )
        try:
            assert pool.execute_batch(sweep_queries) == expected
            assert pool.dead_shards() == {0}
            assert pool.live_shards() == {1}
            assert pool.metrics.counter(names.SCALE_FAULT_FAILOVERS).value > 0
            assert pool.metrics.counter(names.SCALE_FAULT_RESPAWNS).value == 0
        finally:
            pool.close()

    def test_drop_reply_times_out_then_retries_clean(
        self, themis, sweep_queries, expected
    ):
        # The worker computes the answer but never sends it; the dispatch
        # deadline fires as a retryable DispatchTimeoutError (the process is
        # alive), and the retry — ordinal 2, no fault — succeeds.
        injector = FaultInjector().drop_reply(0, at=1).drop_reply(1, at=1)
        pool = _supervised(themis, injector, timeout=0.5)
        try:
            assert pool.execute_batch(sweep_queries) == expected
            assert pool.metrics.counter(names.SCALE_FAULT_CRASHES).value == 0
            assert pool.metrics.counter(names.SCALE_FAULT_RETRIES).value >= 1
            assert [body["incarnation"] for body in pool.describe()] == [0, 0]
        finally:
            pool.close()

    def test_retry_budget_exhaustion_is_typed(self, themis, sweep_queries):
        # Every dispatch's reply is dropped; with one retry allowed the
        # request fails loudly with the attempt count and last error.
        injector = FaultInjector()
        for ordinal in range(1, 5):
            injector.drop_reply(0, at=ordinal).drop_reply(1, at=ordinal)
        pool = _supervised(themis, injector, timeout=0.3, max_retries=1)
        try:
            with pytest.raises(RetryExhaustedError) as excinfo:
                pool.execute_batch(sweep_queries)
            # attempts counts dispatch rounds: the first try plus one retry.
            assert excinfo.value.attempts == 2
            assert isinstance(excinfo.value.last_error, DispatchTimeoutError)
        finally:
            pool.close()

    def test_deadline_budget_bounds_the_retry_loop(self, themis, sweep_queries):
        injector = FaultInjector()
        for ordinal in range(1, 8):
            injector.drop_reply(0, at=ordinal).drop_reply(1, at=ordinal)
        pool = _supervised(themis, injector, timeout=0.2, max_retries=50)
        try:
            started = time.perf_counter()
            with pytest.raises(RetryExhaustedError):
                pool.execute_batch(sweep_queries, deadline=0.6)
            # The deadline cut the 50-retry budget off early.
            assert time.perf_counter() - started < 5.0
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# Total loss: degraded mode
# ---------------------------------------------------------------------------
class TestDegradedMode:
    def test_all_shards_down_raises_typed_error(self, themis, sweep_queries):
        injector = FaultInjector().kill_at_batch(0, at=1).kill_at_batch(1, at=1)
        pool = _supervised(themis, injector, max_respawns=0)
        try:
            with pytest.raises(DegradedModeError):
                pool.execute_batch(sweep_queries)
            assert pool.live_shards() == set()
            assert pool.dead_shards() == {0, 1}
            # Per-request granularity: every outcome carries the typed error.
            outcomes = pool.execute_batch_outcomes(sweep_queries)
            assert all(
                not o.ok and isinstance(o.error, DegradedModeError)
                for o in outcomes
            )
        finally:
            pool.close()

    def test_in_process_fallback_is_bit_identical(
        self, themis, sweep_queries, expected
    ):
        injector = FaultInjector().kill_at_batch(0, at=1).kill_at_batch(1, at=1)
        pool = _supervised(
            themis, injector, max_respawns=0, fallback="in-process"
        )
        try:
            assert pool.execute_batch(sweep_queries) == expected
            assert pool.metrics.counter(
                names.SCALE_FAULT_DEGRADED_REQUESTS
            ).value == len(sweep_queries)
        finally:
            pool.close()

    def test_invalid_fallback_rejected(self, themis):
        with pytest.raises(ValueError, match="fallback"):
            SupervisedWorkerPool(themis, fallback="shrug")


# ---------------------------------------------------------------------------
# Heartbeats
# ---------------------------------------------------------------------------
class TestHeartbeats:
    def test_missed_pings_count_then_reset(self, themis):
        pool = _supervised(
            themis,
            FaultInjector().drop_ping(0, at=1),
            n_workers=1,
            heartbeat_timeout=0.2,
            heartbeat_misses_to_kill=2,
        )
        try:
            pool.check_heartbeats()  # ping 1 swallowed: one miss
            assert pool.metrics.counter(
                names.SCALE_FAULT_HEARTBEAT_MISSES
            ).value == 1
            pool.check_heartbeats()  # ping 2 answered: miss streak resets
            assert pool._heartbeat_misses[0] == 0
            assert pool.metrics.counter(names.SCALE_FAULT_RESPAWNS).value == 0
        finally:
            pool.close()

    def test_miss_streak_escalates_to_respawn(self, themis, sweep_queries, expected):
        pool = _supervised(
            themis,
            FaultInjector().drop_ping(0, at=1),
            n_workers=1,
            heartbeat_timeout=0.2,
            heartbeat_misses_to_kill=1,
        )
        try:
            pool.check_heartbeats()
            assert pool.metrics.counter(names.SCALE_FAULT_RESPAWNS).value == 1
            assert [body["incarnation"] for body in pool.describe()] == [1]
            assert pool.execute_batch(sweep_queries) == expected
        finally:
            pool.close()

    def test_heartbeat_notices_dead_process(self, themis, sweep_queries, expected):
        pool = _supervised(themis, n_workers=1)
        try:
            victim = pool._workers[0].process
            victim.terminate()
            victim.join(5.0)
            pool.check_heartbeats()
            assert pool.metrics.counter(names.SCALE_FAULT_CRASHES).value == 1
            assert pool.execute_batch(sweep_queries) == expected
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# Lifecycle: no orphans
# ---------------------------------------------------------------------------
class TestLifecycle:
    def test_close_escalates_past_a_busy_worker(self, themis, sweep_queries):
        # The worker is mid-sleep inside a faulted batch when close() runs:
        # the polite shutdown can't be processed, so close must terminate.
        pool = _supervised(
            themis,
            FaultInjector().delay_reply(0, seconds=30.0, at=1),
            n_workers=1,
            timeout=0.2,
            max_retries=0,
        )
        process = pool._workers[0].process
        with pytest.raises(ServingOverloadError):
            pool.execute_batch(sweep_queries)
        started = time.perf_counter()
        pool.close(join_timeout=0.3)
        assert time.perf_counter() - started < 10.0
        assert not process.is_alive()
        assert process.exitcode != 0  # terminated, not graceful

    def test_open_pools_are_registered_for_atexit_reaping(self, themis):
        pool = _supervised(themis, n_workers=1)
        try:
            assert pool in _LIVE_POOLS
        finally:
            pool.close()
        assert pool not in _LIVE_POOLS

    def test_close_is_idempotent_and_rejects_work(self, themis, sweep_queries):
        pool = _supervised(themis, n_workers=1)
        pool.close()
        pool.close()
        with pytest.raises(ThemisError, match="closed"):
            pool.execute_batch(sweep_queries)


# ---------------------------------------------------------------------------
# Micro-batcher retry semantics (stub pools, no processes)
# ---------------------------------------------------------------------------
class _FlakyPool:
    """Fails the first ``failures`` dispatches with a retryable crash."""

    def __init__(self, failures: int):
        self.metrics = MetricsRegistry()
        self.failures = failures
        self.calls = 0

    def execute_batch(self, queries, timeout=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise WorkerCrashedError("injected", shard_id=0, reason="test")
        return [f"ok:{query}" for query in queries]


class _OutcomePool:
    """Per-request outcomes: one poisoned query must not fail its batch."""

    def __init__(self):
        self.metrics = MetricsRegistry()

    def execute_batch_outcomes(self, queries, timeout=None):
        return [
            RequestOutcome(ok=False, error=ThemisError("poisoned"))
            if query == "bad"
            else RequestOutcome(ok=True, value=f"ok:{query}")
            for query in queries
        ]


class TestMicroBatcherRetries:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_retryable_failure_is_reenqueued_and_recovers(self):
        pool = _FlakyPool(failures=1)

        async def scenario():
            batcher = MicroBatcher(pool, latency_budget=0.0, max_retries=1)
            await batcher.start()
            try:
                return await batcher.submit("q")
            finally:
                await batcher.stop()

        assert self._run(scenario()) == "ok:q"
        assert pool.calls == 2
        assert pool.metrics.counter(names.SCALE_FAULT_RETRIES).value == 1
        assert ServingStatistics(pool.metrics).dispatch_retries == 1

    def test_zero_retries_preserves_fail_fast(self):
        pool = _FlakyPool(failures=1)

        async def scenario():
            batcher = MicroBatcher(pool, latency_budget=0.0)
            await batcher.start()
            try:
                return await batcher.submit("q")
            finally:
                await batcher.stop()

        with pytest.raises(WorkerCrashedError):
            self._run(scenario())
        assert pool.calls == 1

    def test_exhausted_retries_surface_attempts_and_last_error(self):
        pool = _FlakyPool(failures=10)

        async def scenario():
            batcher = MicroBatcher(pool, latency_budget=0.0, max_retries=2)
            await batcher.start()
            try:
                return await batcher.submit("q")
            finally:
                await batcher.stop()

        with pytest.raises(RetryExhaustedError) as excinfo:
            self._run(scenario())
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.last_error, WorkerCrashedError)
        assert pool.calls == 3

    def test_request_deadline_blocks_reenqueue(self):
        pool = _FlakyPool(failures=10)

        async def scenario():
            batcher = MicroBatcher(
                pool, latency_budget=0.0, max_retries=5, request_deadline=0.0
            )
            await batcher.start()
            try:
                return await batcher.submit("q")
            finally:
                await batcher.stop()

        # The budget is already spent at the first failure: no retries, and
        # (having never retried) the original error — not RetryExhausted.
        with pytest.raises(WorkerCrashedError):
            self._run(scenario())
        assert pool.calls == 1

    def test_outcome_mode_fails_only_the_poisoned_future(self):
        pool = _OutcomePool()

        async def scenario():
            batcher = MicroBatcher(pool, latency_budget=0.05, max_batch_size=8)
            await batcher.start()
            try:
                good, bad = await asyncio.gather(
                    batcher.submit("fine"),
                    batcher.submit("bad"),
                    return_exceptions=True,
                )
                return good, bad
            finally:
                await batcher.stop()

        good, bad = self._run(scenario())
        assert good == "ok:fine"
        assert isinstance(bad, ThemisError)


# ---------------------------------------------------------------------------
# Typed error taxonomy + frozen names
# ---------------------------------------------------------------------------
class TestTaxonomy:
    def test_retryable_marker_classification(self):
        assert issubclass(DispatchTimeoutError, RetryableServingError)
        assert issubclass(DispatchTimeoutError, ServingOverloadError)
        assert issubclass(WorkerCrashedError, RetryableServingError)
        assert not issubclass(RetryExhaustedError, RetryableServingError)
        assert not issubclass(DegradedModeError, RetryableServingError)

    def test_worker_crashed_carries_shard_and_reason(self):
        error = WorkerCrashedError("boom", shard_id=3, reason="pipe-eof")
        assert error.shard_id == 3
        assert error.reason == "pipe-eof"
        assert "shard_id=3" in str(error) and "pipe-eof" in str(error)

    def test_fault_metric_names_are_frozen(self):
        # Dashboards and the chaos experiment key on these exact strings.
        assert names.SCALE_FAULT_CRASHES == "scale.faults.crashes_detected"
        assert names.SCALE_FAULT_RESPAWNS == "scale.faults.respawns"
        assert names.SCALE_FAULT_RETRIES == "scale.faults.retries"
        assert names.SCALE_FAULT_FAILOVERS == "scale.faults.failovers"
        assert (
            names.SCALE_FAULT_REPLAYED_BROADCASTS
            == "scale.faults.replayed_broadcasts"
        )
        assert (
            names.SCALE_FAULT_HEARTBEAT_MISSES == "scale.faults.heartbeat_misses"
        )
        assert (
            names.SCALE_FAULT_DEGRADED_REQUESTS == "scale.faults.degraded_requests"
        )
        assert names.SCALE_RESPAWN_SECONDS == "latency.scale.respawn_seconds"
        for name in (
            names.SCALE_FAULT_CRASHES,
            names.SCALE_FAULT_RESPAWNS,
            names.SCALE_FAULT_RETRIES,
            names.SCALE_FAULT_FAILOVERS,
            names.SCALE_FAULT_REPLAYED_BROADCASTS,
            names.SCALE_FAULT_HEARTBEAT_MISSES,
            names.SCALE_FAULT_DEGRADED_REQUESTS,
        ):
            assert name.startswith(names.SCALE_FAULTS_PREFIX)


# ---------------------------------------------------------------------------
# The supervised front-end, end to end
# ---------------------------------------------------------------------------
class TestSupervisedFrontend:
    def test_concurrent_clients_survive_a_worker_kill(
        self, themis, sweep_queries, expected
    ):
        injector = FaultInjector().kill_at_batch(0, at=1)

        async def scenario():
            async with AsyncServingFrontend(
                themis,
                n_workers=2,
                latency_budget=0.0,
                fault_injector=injector,
            ) as frontend:
                answers = await asyncio.gather(
                    *(frontend.query(query) for query in sweep_queries)
                )
                return answers, frontend.pool.metrics

        answers, metrics = asyncio.run(scenario())
        assert answers == expected
        assert metrics.counter(names.SCALE_FAULT_CRASHES).value >= 1
        assert metrics.counter(names.SCALE_FAULT_RESPAWNS).value >= 1

    def test_unsupervised_flag_gives_the_bare_pool(self, themis):
        async def scenario():
            async with AsyncServingFrontend(
                themis, n_workers=1, supervised=False
            ) as frontend:
                return type(frontend.pool).__name__

        assert asyncio.run(scenario()) == "ShardedWorkerPool"
