"""Tests for the experiment harness and the per-figure experiment modules.

These run at TINY_SCALE: they check plumbing (row shapes, parameter passing,
determinism) and the paper's coarsest qualitative claims, not exact numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    TINY_SCALE,
    ExperimentResult,
    build_aggregates,
    dataset_bundle,
    fit_methods,
    flights_bundle,
    format_table,
    one_dimensional_order,
    point_query_errors,
    point_query_workload,
    run_1d_sweep,
    run_bias_sweep,
    run_bn_modes,
    run_nd_sweep,
    run_overall_accuracy,
    run_pruning,
    run_query_execution_time,
    run_reuse_comparison,
    run_reweighting_comparison,
    run_simplification_ablation,
    run_solver_time,
    run_sql_queries,
    run_table1,
    run_table4_improvement,
    run_time_accuracy,
)

SCALE = TINY_SCALE


class TestHarness:
    def test_dataset_bundles_cached(self):
        first = flights_bundle(SCALE)
        second = flights_bundle(SCALE)
        assert first is second

    def test_dataset_bundle_by_name(self):
        assert dataset_bundle("flights", SCALE).name == "flights"
        with pytest.raises(ExperimentError):
            dataset_bundle("nope", SCALE)

    def test_one_dimensional_orders(self):
        order_a = one_dimensional_order("flights", "A")
        order_b = one_dimensional_order("flights", "B")
        assert order_a == tuple(reversed(order_b))
        with pytest.raises(ExperimentError):
            one_dimensional_order("flights", "C")

    def test_build_aggregates_counts(self):
        bundle = flights_bundle(SCALE)
        aggregates = build_aggregates(bundle, n_two_dimensional=2)
        dimensions = sorted(a.dimension for a in aggregates)
        assert dimensions == [1, 1, 1, 1, 1, 2, 2]

    def test_fit_methods_and_errors(self):
        bundle = flights_bundle(SCALE)
        aggregates = build_aggregates(bundle, n_two_dimensional=1)
        fitted = fit_methods(
            bundle.sample("SCorners"),
            aggregates,
            population_size=bundle.population_size,
            scale=SCALE,
            methods=("AQP", "IPF", "BB", "Hybrid"),
        )
        assert set(fitted.methods()) == {"AQP", "IPF", "BB", "Hybrid"}
        workload = point_query_workload(
            bundle, [("origin_state", "dest_state")], "heavy", 5, seed=1
        )
        errors = point_query_errors(fitted.evaluators, workload)
        assert all(len(values) == len(workload) for values in errors.values())

    def test_unknown_method_rejected(self):
        bundle = flights_bundle(SCALE)
        aggregates = build_aggregates(bundle)
        with pytest.raises(ExperimentError):
            fit_methods(
                bundle.sample("Unif"),
                aggregates,
                population_size=bundle.population_size,
                scale=SCALE,
                methods=("Bogus",),
            )


class TestReporting:
    def test_experiment_result_rendering(self):
        result = ExperimentResult("x", "title", paper_claim="claim")
        result.add_row(a=1, b=2.5)
        result.add_row(a=3, b=float("inf"))
        text = result.render()
        assert "title" in text and "claim" in text and "inf" in text

    def test_filter_and_column(self):
        result = ExperimentResult("x", "t")
        result.add_row(method="AQP", error=10.0)
        result.add_row(method="IPF", error=5.0)
        assert result.filter_rows(method="IPF")[0]["error"] == 5.0
        assert result.column("error") == [10.0, 5.0]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"


class TestExperiments:
    def test_table1_rows(self):
        result = run_table1(SCALE, states=("CA", "ME"))
        assert len(result.rows) == 2
        assert {"state", "true", "themis"} <= set(result.columns())

    def test_overall_accuracy_shape(self):
        result = run_overall_accuracy(
            "flights", SCALE, samples=("SCorners",), methods=("AQP", "Hybrid")
        )
        assert len(result.rows) == 2 * 2  # 2 methods x heavy/light
        assert all(np.isfinite(row["median"]) for row in result.rows)

    def test_overall_accuracy_headline_claim_at_small_scale(self):
        """Fig. 3 / Table 4 shape: hybrid beats AQP on heavy hitters (SCorners)."""
        from repro.experiments import SMALL_SCALE

        result = run_overall_accuracy(
            "flights", SMALL_SCALE, samples=("SCorners",), methods=("AQP", "Hybrid")
        )
        heavy_aqp = result.filter_rows(sample="SCorners", hitters="heavy", method="AQP")[0]
        heavy_hybrid = result.filter_rows(
            sample="SCorners", hitters="heavy", method="Hybrid"
        )[0]
        assert heavy_hybrid["median"] < heavy_aqp["median"]

    def test_table4_improvement_rows(self):
        overall = run_overall_accuracy(
            "flights", SCALE, samples=("SCorners",), methods=("AQP", "Hybrid")
        )
        table4 = run_table4_improvement(SCALE, overall=overall)
        assert len(table4.rows) == 2
        assert "improvement_p50" in table4.columns()

    def test_bias_sweep_rows(self):
        result = run_bias_sweep(SCALE, biases=(1.0, 0.9), methods=("AQP", "IPF"))
        assert len(result.rows) == 4

    def test_sql_queries_rows(self):
        result = run_sql_queries(SCALE, methods=("IPF", "Hybrid"), biases=(1.0,))
        assert len(result.rows) == 6 * 2
        assert all(np.isfinite(row["avg_percent_difference"]) for row in result.rows)

    def test_1d_sweep_rows(self):
        result = run_1d_sweep(
            "flights",
            SCALE,
            samples=("SCorners",),
            orders=("A",),
            budgets=(1, 2),
            methods=("AQP", "IPF"),
        )
        assert len(result.rows) == 4

    def test_nd_sweep_rows(self):
        result = run_nd_sweep(
            "flights",
            2,
            SCALE,
            samples=("SCorners",),
            budgets=(0, 2),
            methods=("IPF", "BB"),
        )
        assert len(result.rows) == 4

    def test_bn_modes_rows(self):
        result = run_bn_modes(SCALE, budgets=(0, 2), modes=("SS", "BB"))
        assert len(result.rows) == 2 * 2 * 2

    def test_reweighting_comparison_ipf_beats_aqp_on_biased_sample(self):
        result = run_reweighting_comparison(
            SCALE, samples=("SCorners",), methods=("AQP", "IPF")
        )
        aqp = result.filter_rows(sample="SCorners", method="AQP")[0]["mean"]
        ipf = result.filter_rows(sample="SCorners", method="IPF")[0]["mean"]
        assert ipf <= aqp

    def test_pruning_rows_include_opt(self):
        result = run_pruning(SCALE, budgets=(4,), selection_methods=("t-cherry",), bn_methods=("BB",))
        selections = {row["selection"] for row in result.rows}
        assert "OPT" in selections and "Prune" in selections

    def test_time_accuracy_rows(self):
        result = run_time_accuracy(SCALE, configurations=((2, 0), (5, 1)))
        assert len(result.rows) == 4
        assert all(row["solver_seconds"] >= 0 for row in result.rows)

    def test_reuse_comparison_rows(self):
        result = run_reuse_comparison(SCALE, biases=(1.0,))
        assert len(result.rows) == 2
        assert all(np.isfinite(row["hybrid_error"]) for row in result.rows)

    def test_query_execution_time_rows(self):
        result = run_query_execution_time(SCALE, methods=("IPF", "BB"))
        assert len(result.rows) == 2
        assert all(row["avg_query_seconds"] < 1.0 for row in result.rows)

    def test_solver_time_rows(self):
        result = run_solver_time(SCALE, configurations=((2, 0), (3, 1)))
        assert len(result.rows) == 2
        assert all(row["ipf_seconds"] >= 0 for row in result.rows)

    def test_simplification_ablation_claim(self):
        result = run_simplification_ablation(SCALE)
        per_factor = result.filter_rows(solver="per-factor (Sec. 5.2)")[0]
        naive = result.filter_rows(solver="naive joint (Eq. 2)")[0]
        assert per_factor["seconds"] <= naive["seconds"]
