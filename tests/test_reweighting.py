"""Tests for the sample reweighting techniques (Sec. 4.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import AggregateQuery, AggregateSet, IncidenceSystem
from repro.exceptions import ReweightingError
from repro.reweighting import (
    HorvitzThompsonReweighter,
    IPFReweighter,
    LinearRegressionReweighter,
    UniformReweighter,
)
from repro.schema import Attribute, Domain, Relation, Schema


class TestUniformReweighter:
    def test_weights_are_population_over_sample(self, paper_sample, paper_aggregates):
        result = UniformReweighter().fit(paper_sample, paper_aggregates)
        assert np.allclose(result.weights, 10.0 / 4.0)
        assert result.converged

    def test_explicit_population_size(self, paper_sample):
        result = UniformReweighter(population_size=100).fit(paper_sample, AggregateSet())
        assert np.allclose(result.weights, 25.0)

    def test_missing_population_size_rejected(self, paper_sample):
        with pytest.raises(ReweightingError):
            UniformReweighter().fit(paper_sample, AggregateSet())

    def test_empty_sample_rejected(self, paper_schema, paper_aggregates):
        empty = Relation.empty(paper_schema)
        with pytest.raises(ReweightingError):
            UniformReweighter().fit(empty, paper_aggregates)

    def test_apply_attaches_weights(self, paper_sample, paper_aggregates):
        weighted = UniformReweighter().reweight(paper_sample, paper_aggregates)
        assert weighted.has_weights
        assert weighted.total_weight() == pytest.approx(10.0)


class TestHorvitzThompson:
    def test_inverse_probability_weights(self, paper_sample, paper_aggregates):
        probabilities = [0.5, 0.5, 0.25, 0.1]
        result = HorvitzThompsonReweighter(probabilities).fit(
            paper_sample, paper_aggregates
        )
        assert np.allclose(result.weights, [2.0, 2.0, 4.0, 10.0])

    def test_normalization(self, paper_sample, paper_aggregates):
        result = HorvitzThompsonReweighter([0.5] * 4, normalize_to=10.0).fit(
            paper_sample, paper_aggregates
        )
        assert result.total_weight == pytest.approx(10.0)

    def test_mapping_probabilities(self, paper_sample, paper_aggregates):
        probabilities = {row: 0.4 for row in paper_sample.iter_rows()}
        result = HorvitzThompsonReweighter(probabilities).fit(
            paper_sample, paper_aggregates
        )
        assert np.allclose(result.weights, 2.5)

    def test_callable_probabilities(self, paper_sample, paper_aggregates):
        result = HorvitzThompsonReweighter(lambda row: 0.2).fit(
            paper_sample, paper_aggregates
        )
        assert np.allclose(result.weights, 5.0)

    def test_invalid_probability_rejected(self, paper_sample, paper_aggregates):
        with pytest.raises(ReweightingError):
            HorvitzThompsonReweighter([0.0, 0.5, 0.5, 0.5]).fit(
                paper_sample, paper_aggregates
            )

    def test_wrong_length_rejected(self, paper_sample, paper_aggregates):
        with pytest.raises(ReweightingError):
            HorvitzThompsonReweighter([0.5, 0.5]).fit(paper_sample, paper_aggregates)


class TestLinearRegression:
    def test_weights_sum_to_population_size(self, paper_sample, paper_aggregates):
        result = LinearRegressionReweighter().fit(paper_sample, paper_aggregates)
        assert result.total_weight == pytest.approx(10.0)

    def test_weights_strictly_positive(self, paper_sample, paper_aggregates):
        result = LinearRegressionReweighter().fit(paper_sample, paper_aggregates)
        assert np.all(result.weights > 0)

    def test_requires_aggregates(self, paper_sample):
        with pytest.raises(ReweightingError):
            LinearRegressionReweighter(population_size=10).fit(
                paper_sample, AggregateSet()
            )

    def test_dropped_constraints_recorded(self, paper_sample, paper_aggregates):
        result = LinearRegressionReweighter().fit(paper_sample, paper_aggregates)
        # Four (o_st, d_st) groups are missing from the sample.
        assert result.diagnostics["dropped_constraints"] == 4

    def test_uniform_recovery_on_unbiased_data(self, correlated_population):
        """On the full population with exact aggregates, weights are ~1."""
        aggregates = AggregateSet(
            [AggregateQuery.from_relation(correlated_population, ["A"])]
        )
        result = LinearRegressionReweighter().fit(correlated_population, aggregates)
        assert result.total_weight == pytest.approx(correlated_population.n_rows)
        assert result.weights.std() < 0.5

    def test_corrects_known_bias(self, correlated_population, biased_correlated_sample,
                                 correlated_aggregates):
        """Weighted marginal of the biased attribute approaches the truth."""
        result = LinearRegressionReweighter().fit(
            biased_correlated_sample, correlated_aggregates
        )
        weighted = result.apply(biased_correlated_sample)
        estimated = weighted.value_counts(["A"], weighted=True)
        truth = correlated_population.value_counts(["A"])
        for key, true_count in truth.items():
            assert estimated.get(key, 0.0) == pytest.approx(true_count, rel=0.35)


class TestIPF:
    def test_paper_example_first_iteration(self, paper_sample, paper_aggregates):
        """After one sweep the weights match Example 4.2's last column."""
        result = IPFReweighter(max_iterations=1).fit(paper_sample, paper_aggregates)
        assert np.allclose(result.weights, [1.0, 1.0, 3.0, 1.0])
        assert not result.converged

    def test_non_convergence_reported_for_missing_support(
        self, paper_sample, paper_aggregates
    ):
        result = IPFReweighter(max_iterations=20).fit(paper_sample, paper_aggregates)
        assert not result.converged
        assert result.max_violation > 0

    def test_convergence_on_consistent_system(self, correlated_population):
        aggregates = AggregateSet(
            [
                AggregateQuery.from_relation(correlated_population, ["A"]),
                AggregateQuery.from_relation(correlated_population, ["B"]),
            ]
        )
        result = IPFReweighter(max_iterations=50).fit(correlated_population, aggregates)
        assert result.converged
        assert result.max_violation < 1e-5

    def test_constraints_satisfied_after_fit(
        self, correlated_population, biased_correlated_sample, correlated_aggregates
    ):
        result = IPFReweighter(max_iterations=100).fit(
            biased_correlated_sample, correlated_aggregates
        )
        system = IncidenceSystem(biased_correlated_sample, correlated_aggregates)
        assert system.max_relative_violation(result.weights) < 0.05

    def test_corrects_known_bias_better_than_uniform(
        self, correlated_population, biased_correlated_sample, correlated_aggregates
    ):
        ipf = IPFReweighter(max_iterations=100).reweight(
            biased_correlated_sample, correlated_aggregates
        )
        uniform = UniformReweighter().reweight(
            biased_correlated_sample, correlated_aggregates
        )
        truth = correlated_population.value_counts(["A", "B"])

        def total_error(weighted):
            estimated = weighted.value_counts(["A", "B"], weighted=True)
            return sum(
                abs(estimated.get(key, 0.0) - value) for key, value in truth.items()
            )

        assert total_error(ipf) < total_error(uniform)

    def test_normalize_population_size(self, paper_sample, paper_aggregates):
        result = IPFReweighter(
            max_iterations=5, normalize_population_size=True
        ).fit(paper_sample, paper_aggregates)
        assert result.total_weight == pytest.approx(10.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ReweightingError):
            IPFReweighter(max_iterations=0)
        with pytest.raises(ReweightingError):
            IPFReweighter(tolerance=-1.0)
        with pytest.raises(ReweightingError):
            IPFReweighter(initial_weight=0.0)

    def test_requires_aggregates(self, paper_sample):
        with pytest.raises(ReweightingError):
            IPFReweighter().fit(paper_sample, AggregateSet())


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_ipf_weights_always_non_negative(seed):
    """Property: IPF never produces negative weights on random data."""
    rng = np.random.default_rng(seed)
    schema = Schema([Attribute("a", [0, 1, 2]), Attribute("b", [0, 1])])
    population = Relation(
        schema,
        {
            "a": rng.integers(0, 3, size=200),
            "b": rng.integers(0, 2, size=200),
        },
    )
    sample = population.take(rng.choice(200, size=40, replace=False))
    aggregates = AggregateSet(
        [
            AggregateQuery.from_relation(population, ["a"]),
            AggregateQuery.from_relation(population, ["b"]),
        ]
    )
    result = IPFReweighter(max_iterations=30).fit(sample, aggregates)
    assert np.all(result.weights >= 0)
