"""Tests for aggregate queries, aggregate sets, and the incidence system."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import (
    AggregateQuery,
    AggregateSet,
    IncidenceSystem,
    aggregates_from_population,
    build_incidence,
)
from repro.exceptions import AggregateError
from repro.schema import Attribute, Domain, Relation, Schema


class TestAggregateQuery:
    def test_paper_example_gamma1(self, paper_population):
        gamma1 = AggregateQuery.from_relation(paper_population, ["date"])
        assert gamma1.groups() == {("01",): 5.0, ("02",): 5.0}
        assert gamma1.dimension == 1
        assert gamma1.total == 10.0

    def test_paper_example_gamma2(self, paper_population):
        gamma2 = AggregateQuery.from_relation(paper_population, ["o_st", "d_st"])
        assert gamma2.n_groups == 7
        assert gamma2.count_for(("NC", "NY")) == 3.0
        assert gamma2.count_for(("FL", "NC")) == 0.0

    def test_from_pairs(self):
        aggregate = AggregateQuery.from_pairs(["x"], [(["a"], 3), (["b"], 7)])
        assert aggregate.count_for(("a",)) == 3.0

    def test_negative_count_rejected(self):
        with pytest.raises(AggregateError):
            AggregateQuery(("x",), {("a",): -1.0})

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(AggregateError):
            AggregateQuery(("x", "x"), {("a", "b"): 1.0})

    def test_wrong_key_width_rejected(self):
        with pytest.raises(AggregateError):
            AggregateQuery(("x", "y"), {("a",): 1.0})

    def test_probabilities_sum_to_one(self, paper_population):
        gamma2 = AggregateQuery.from_relation(paper_population, ["o_st", "d_st"])
        assert pytest.approx(sum(gamma2.probabilities().values())) == 1.0

    def test_marginalize_preserves_total(self, paper_population):
        gamma2 = AggregateQuery.from_relation(paper_population, ["o_st", "d_st"])
        marginal = gamma2.marginalize(["o_st"])
        assert marginal.total == gamma2.total
        assert marginal.count_for(("NC",)) == 4.0

    def test_marginalize_invalid_attribute(self, paper_population):
        gamma1 = AggregateQuery.from_relation(paper_population, ["date"])
        with pytest.raises(AggregateError):
            gamma1.marginalize(["o_st"])

    def test_covers(self, paper_population):
        gamma2 = AggregateQuery.from_relation(paper_population, ["o_st", "d_st"])
        assert gamma2.covers(["o_st"])
        assert not gamma2.covers(["date"])

    def test_perturbed_counts_stay_non_negative(self, paper_population):
        gamma1 = AggregateQuery.from_relation(paper_population, ["date"])
        noisy = gamma1.perturbed(5.0, np.random.default_rng(0))
        assert all(count >= 0 for count in noisy.counts())

    def test_counts_and_value_vectors_aligned(self, paper_population):
        gamma2 = AggregateQuery.from_relation(paper_population, ["o_st", "d_st"])
        vectors = gamma2.value_vectors()
        counts = gamma2.counts()
        assert len(vectors) == len(counts)
        assert gamma2.count_for(vectors[0]) == counts[0]


class TestAggregateSet:
    def test_covered_attributes(self, paper_aggregates):
        assert paper_aggregates.covered_attributes() == {"date", "o_st", "d_st"}

    def test_n_constraints(self, paper_aggregates):
        assert paper_aggregates.n_constraints() == 2 + 7

    def test_population_size(self, paper_aggregates):
        assert paper_aggregates.population_size() == 10.0

    def test_of_dimension(self, paper_aggregates):
        assert len(paper_aggregates.of_dimension(1)) == 1
        assert len(paper_aggregates.of_dimension(2)) == 1

    def test_best_covering_prefers_lower_dimension(self, paper_population):
        aggregates = AggregateSet(
            [
                AggregateQuery.from_relation(paper_population, ["o_st"]),
                AggregateQuery.from_relation(paper_population, ["o_st", "d_st"]),
            ]
        )
        best = aggregates.best_covering(["o_st"])
        assert best.dimension == 1

    def test_exact(self, paper_aggregates):
        assert paper_aggregates.exact(["d_st", "o_st"]) is not None
        assert paper_aggregates.exact(["date", "o_st"]) is None

    def test_restrict(self, paper_aggregates):
        restricted = paper_aggregates.restrict([("o_st", "d_st")])
        assert len(restricted) == 1

    def test_union(self, paper_aggregates):
        combined = paper_aggregates.union(paper_aggregates)
        assert len(combined) == 4

    def test_add_rejects_non_aggregate(self):
        with pytest.raises(AggregateError):
            AggregateSet().add("not an aggregate")

    def test_aggregates_from_population(self, paper_population):
        aggregates = aggregates_from_population(
            paper_population, [("date",), ("o_st",)]
        )
        assert len(aggregates) == 2


class TestIncidenceSystem:
    def test_paper_example_shape(self, paper_sample, paper_aggregates):
        system = IncidenceSystem(paper_sample, paper_aggregates)
        assert system.matrix.shape == (9, 4)
        assert system.counts.tolist() == [5, 5, 2, 1, 1, 3, 1, 1, 1]

    def test_paper_example_first_row(self, paper_sample, paper_aggregates):
        """Row for date=01 marks sample tuples 1, 2, and 4 (Example 4.1)."""
        system = IncidenceSystem(paper_sample, paper_aggregates)
        assert system.matrix[0].tolist() == [1.0, 1.0, 0.0, 1.0]

    def test_empty_constraints_detected(self, paper_sample, paper_aggregates):
        system = IncidenceSystem(paper_sample, paper_aggregates)
        # Sample has no FL->NY, NC->FL, NY->FL, NY->NY flights.
        assert len(system.empty_constraints()) == 4

    def test_residuals_zero_for_exact_weights(self, paper_population, paper_aggregates):
        """Weights of one on the full population satisfy its own aggregates."""
        system = IncidenceSystem(paper_population, paper_aggregates)
        residuals = system.residuals(np.ones(paper_population.n_rows))
        assert np.allclose(residuals, 0.0)

    def test_max_relative_violation_ignores_empty_constraints(
        self, paper_sample, paper_aggregates
    ):
        system = IncidenceSystem(paper_sample, paper_aggregates)
        violation = system.max_relative_violation(np.ones(4) * 2.5)
        assert np.isfinite(violation)

    def test_wrong_weight_shape_rejected(self, paper_sample, paper_aggregates):
        system = IncidenceSystem(paper_sample, paper_aggregates)
        with pytest.raises(AggregateError):
            system.residuals(np.ones(3))

    def test_build_incidence_accepts_single_aggregate(
        self, paper_sample, paper_population
    ):
        aggregate = AggregateQuery.from_relation(paper_population, ["date"])
        system = build_incidence(paper_sample, aggregate)
        assert system.n_constraints == 2

    def test_unknown_attribute_rejected(self, paper_sample):
        bad = AggregateQuery(("unknown",), {("x",): 1.0})
        with pytest.raises(AggregateError):
            IncidenceSystem(paper_sample, AggregateSet([bad]))

    def test_no_aggregates_rejected(self, paper_sample):
        with pytest.raises(AggregateError):
            IncidenceSystem(paper_sample, AggregateSet())


@settings(max_examples=20, deadline=None)
@given(
    counts=st.lists(st.integers(0, 50), min_size=2, max_size=6),
)
def test_marginalization_total_invariant(counts):
    """Property: marginalizing an aggregate never changes its total count."""
    values = [("v%d" % i, "w%d" % (i % 2)) for i in range(len(counts))]
    aggregate = AggregateQuery(("a", "b"), dict(zip(values, map(float, counts))))
    assert aggregate.marginalize(["b"]).total == pytest.approx(aggregate.total)
