"""Tests for the DAG and Factor building blocks of the Bayesian network."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesnet import DirectedAcyclicGraph, Factor, multiply_all
from repro.exceptions import BayesNetError, CyclicGraphError


class TestDAG:
    def test_add_and_query_edges(self):
        graph = DirectedAcyclicGraph(["a", "b", "c"])
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        assert graph.has_edge("a", "b")
        assert graph.parents("c") == ("b",)
        assert graph.children("a") == ("b",)
        assert graph.n_edges == 2

    def test_cycle_rejected(self):
        graph = DirectedAcyclicGraph(["a", "b"], [("a", "b")])
        with pytest.raises(CyclicGraphError):
            graph.add_edge("b", "a")

    def test_self_loop_rejected(self):
        graph = DirectedAcyclicGraph(["a"])
        with pytest.raises(CyclicGraphError):
            graph.add_edge("a", "a")

    def test_would_create_cycle(self):
        graph = DirectedAcyclicGraph(["a", "b", "c"], [("a", "b"), ("b", "c")])
        assert graph.would_create_cycle("c", "a")
        assert not graph.would_create_cycle("a", "c")

    def test_remove_edge(self):
        graph = DirectedAcyclicGraph(["a", "b"], [("a", "b")])
        graph.remove_edge("a", "b")
        assert graph.n_edges == 0
        with pytest.raises(BayesNetError):
            graph.remove_edge("a", "b")

    def test_reverse_edge(self):
        graph = DirectedAcyclicGraph(["a", "b"], [("a", "b")])
        graph.reverse_edge("a", "b")
        assert graph.has_edge("b", "a")

    def test_reverse_edge_that_would_cycle_restores_original(self):
        graph = DirectedAcyclicGraph(
            ["a", "b", "c"], [("a", "b"), ("a", "c"), ("c", "b")]
        )
        with pytest.raises(CyclicGraphError):
            graph.reverse_edge("a", "b")
        assert graph.has_edge("a", "b")

    def test_topological_order(self):
        graph = DirectedAcyclicGraph(["c", "a", "b"], [("a", "b"), ("b", "c")])
        order = graph.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_ancestors(self):
        graph = DirectedAcyclicGraph(["a", "b", "c"], [("a", "b"), ("b", "c")])
        assert graph.ancestors("c") == {"a", "b"}
        assert graph.ancestors("a") == set()

    def test_is_tree(self):
        tree = DirectedAcyclicGraph(["a", "b", "c"], [("a", "b"), ("a", "c")])
        assert tree.is_tree()
        non_tree = DirectedAcyclicGraph(
            ["a", "b", "c"], [("a", "c"), ("b", "c")]
        )
        assert not non_tree.is_tree()

    def test_copy_is_independent(self):
        graph = DirectedAcyclicGraph(["a", "b"], [("a", "b")])
        copied = graph.copy()
        copied.remove_edge("a", "b")
        assert graph.has_edge("a", "b")

    def test_unknown_node_rejected(self):
        graph = DirectedAcyclicGraph(["a"])
        with pytest.raises(BayesNetError):
            graph.add_edge("a", "missing")

    def test_equality(self):
        assert DirectedAcyclicGraph(["a", "b"], [("a", "b")]) == DirectedAcyclicGraph(
            ["b", "a"], [("a", "b")]
        )


class TestFactor:
    def test_restrict(self):
        factor = Factor(("a", "b"), np.arange(6).reshape(2, 3))
        restricted = factor.restrict({"a": 1})
        assert restricted.attributes == ("b",)
        assert restricted.table.tolist() == [3, 4, 5]

    def test_restrict_out_of_range_rejected(self):
        factor = Factor(("a",), np.ones(2))
        with pytest.raises(BayesNetError):
            factor.restrict({"a": 5})

    def test_multiply_disjoint(self):
        left = Factor(("a",), np.array([0.2, 0.8]))
        right = Factor(("b",), np.array([0.5, 0.5]))
        product = left.multiply(right)
        assert set(product.attributes) == {"a", "b"}
        assert product.table.sum() == pytest.approx(1.0)

    def test_multiply_shared_attribute(self):
        left = Factor(("a", "b"), np.ones((2, 3)))
        right = Factor(("b",), np.array([1.0, 2.0, 3.0]))
        product = left.multiply(right)
        assert product.table.shape == (2, 3)
        assert product.table[0].tolist() == [1.0, 2.0, 3.0]

    def test_multiply_with_scalar(self):
        scalar = Factor.constant(2.0)
        other = Factor(("a",), np.array([1.0, 3.0]))
        assert scalar.multiply(other).table.tolist() == [2.0, 6.0]

    def test_marginalize(self):
        factor = Factor(("a", "b"), np.arange(6).reshape(2, 3).astype(float))
        marginal = factor.marginalize(["b"])
        assert marginal.attributes == ("a",)
        assert marginal.table.tolist() == [3.0, 12.0]

    def test_marginalize_missing_attribute_is_noop(self):
        factor = Factor(("a",), np.ones(2))
        assert factor.marginalize(["zzz"]) is factor

    def test_normalize(self):
        factor = Factor(("a",), np.array([2.0, 2.0]))
        assert factor.normalize().table.tolist() == [0.5, 0.5]

    def test_negative_values_rejected(self):
        with pytest.raises(BayesNetError):
            Factor(("a",), np.array([-1.0, 1.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(BayesNetError):
            Factor(("a", "b"), np.ones(3))

    def test_multiply_all(self):
        factors = [Factor(("a",), np.array([0.5, 0.5])), Factor(("a",), np.array([2.0, 4.0]))]
        product = multiply_all(factors)
        assert product.table.tolist() == [1.0, 2.0]

    def test_value_of_scalar(self):
        assert Factor.constant(3.5).value() == 3.5
        with pytest.raises(BayesNetError):
            Factor(("a",), np.ones(2)).value()

    @settings(max_examples=25, deadline=None)
    @given(
        left=st.lists(st.floats(0.0, 10.0), min_size=2, max_size=2),
        right=st.lists(st.floats(0.0, 10.0), min_size=3, max_size=3),
    )
    def test_multiplication_order_invariant(self, left, right):
        """Property: factor multiplication commutes (same total mass)."""
        f = Factor(("a",), np.asarray(left))
        g = Factor(("b",), np.asarray(right))
        assert f.multiply(g).sum() == pytest.approx(g.multiply(f).sum())
