"""Tests for the weighted query engine and the in-memory database."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.query import (
    AggregateFunction,
    AggregateSpec,
    Comparison,
    GroupByQuery,
    JoinGroupByQuery,
    PointQuery,
    Predicate,
    ScalarAggregateQuery,
)
from repro.schema import Attribute, Domain, Relation, Schema
from repro.sql import Database, WeightedQueryEngine, answer_point_query


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("origin", ["CA", "NY", "WA"]),
            Attribute("dest", ["CA", "NY", "WA"]),
            Attribute("minutes", [30, 60, 120]),
        ]
    )


@pytest.fixture
def flights(schema) -> Relation:
    rows = [
        ("CA", "NY", 120),
        ("CA", "WA", 60),
        ("CA", "CA", 30),
        ("NY", "CA", 120),
        ("NY", "NY", 30),
        ("WA", "CA", 60),
    ]
    return Relation.from_rows(schema, rows, weights=[2, 2, 1, 1, 3, 1])


class TestPointQueries:
    def test_point_sums_weights(self, flights):
        engine = WeightedQueryEngine(flights)
        assert engine.point({"origin": "CA"}) == 5.0
        assert engine.point({"origin": "CA", "dest": "NY"}) == 2.0

    def test_point_missing_tuple_is_zero(self, flights):
        assert WeightedQueryEngine(flights).point({"origin": "WA", "dest": "NY"}) == 0.0

    def test_point_requires_assignment(self, flights):
        with pytest.raises(QueryError):
            WeightedQueryEngine(flights).point({})

    def test_answer_point_query_helper(self, flights):
        assert answer_point_query(flights, {"dest": "CA"}) == 3.0

    def test_execute_dispatch_point(self, flights):
        engine = WeightedQueryEngine(flights)
        assert engine.execute(PointQuery({"origin": "NY"})) == 4.0


class TestScalarQueries:
    def test_count_with_range_filter(self, flights):
        query = ScalarAggregateQuery(
            predicates=(Predicate("minutes", Comparison.LE, 60),)
        )
        assert WeightedQueryEngine(flights).scalar(query) == 7.0

    def test_weighted_average(self, flights):
        query = ScalarAggregateQuery(
            aggregate=AggregateSpec(AggregateFunction.AVG, "minutes"),
            predicates=(Predicate("origin", Comparison.EQ, "CA"),),
        )
        expected = (2 * 120 + 2 * 60 + 1 * 30) / 5
        assert WeightedQueryEngine(flights).scalar(query) == pytest.approx(expected)

    def test_sum_aggregate(self, flights):
        query = ScalarAggregateQuery(
            aggregate=AggregateSpec(AggregateFunction.SUM, "minutes")
        )
        expected = 2 * 120 + 2 * 60 + 30 + 120 + 3 * 30 + 60
        assert WeightedQueryEngine(flights).scalar(query) == expected

    def test_empty_filter_result(self, flights):
        query = ScalarAggregateQuery(
            aggregate=AggregateSpec(AggregateFunction.AVG, "minutes"),
            predicates=(Predicate("origin", Comparison.EQ, "TX"),),
        )
        assert WeightedQueryEngine(flights).scalar(query) == 0.0


class TestGroupByQueries:
    def test_weighted_counts_per_group(self, flights):
        query = GroupByQuery(group_by=("origin",))
        result = WeightedQueryEngine(flights).group_by(query)
        assert result.value(("CA",)) == 5.0
        assert result.value(("NY",)) == 4.0
        assert result.value(("WA",)) == 1.0

    def test_average_per_group_with_filter(self, flights):
        query = GroupByQuery(
            group_by=("origin",),
            aggregate=AggregateSpec(AggregateFunction.AVG, "minutes"),
            predicates=(Predicate("dest", Comparison.EQ, "CA"),),
        )
        result = WeightedQueryEngine(flights).group_by(query)
        assert result.value(("CA",)) == 30.0
        assert result.value(("NY",)) == 120.0
        assert ("WA",) in result

    def test_groups_with_zero_weight_dropped(self, schema):
        relation = Relation.from_rows(
            schema, [("CA", "NY", 30), ("NY", "CA", 60)], weights=[0.0, 1.0]
        )
        result = WeightedQueryEngine(relation).group_by(GroupByQuery(group_by=("origin",)))
        assert ("CA",) not in result
        assert result.value(("NY",)) == 1.0

    def test_empty_relation(self, schema):
        result = WeightedQueryEngine(Relation.empty(schema)).group_by(
            GroupByQuery(group_by=("origin",))
        )
        assert len(result) == 0

    def test_result_helpers(self, flights):
        result = WeightedQueryEngine(flights).group_by(GroupByQuery(group_by=("dest",)))
        assert result.groups() == {("CA",), ("NY",), ("WA",)}
        assert result.value(("XX",), default=-1.0) == -1.0
        assert len(result.as_dict()) == 3

    def test_non_numeric_average_rejected(self, flights):
        query = GroupByQuery(
            group_by=("minutes",),
            aggregate=AggregateSpec(AggregateFunction.AVG, "origin"),
        )
        with pytest.raises(QueryError):
            WeightedQueryEngine(flights).group_by(query)


class TestJoinQueries:
    def test_self_join_counts_weighted_pairs(self, flights):
        query = JoinGroupByQuery(
            left_join="dest",
            right_join="origin",
            left_group="origin",
            right_group="dest",
            left_predicates=(Predicate("dest", Comparison.IN, ("CA",)),),
        )
        result = WeightedQueryEngine(flights).join_group_by(query)
        # Left tuples with dest=CA: CA->CA (w=1), NY->CA (w=1), WA->CA (w=1).
        # They join with right tuples having origin=CA (weights 2, 2, 1).
        assert result.value(("CA", "NY")) == 1 * 2
        assert result.value(("NY", "WA")) == 1 * 2
        assert result.value(("WA", "CA")) == 1 * 1

    def test_join_with_no_matches(self, flights):
        query = JoinGroupByQuery(
            left_join="dest",
            right_join="origin",
            left_group="origin",
            right_group="dest",
            left_predicates=(Predicate("dest", Comparison.EQ, "TX"),),
        )
        result = WeightedQueryEngine(flights).join_group_by(query)
        assert len(result) == 0


class TestDatabase:
    def test_create_and_query_table(self, flights):
        database = Database()
        database.create_table("flights", flights)
        assert "flights" in database
        assert database.point("flights", {"origin": "CA"}) == 5.0

    def test_duplicate_table_rejected_unless_replace(self, flights):
        database = Database()
        database.create_table("flights", flights)
        with pytest.raises(QueryError):
            database.create_table("flights", flights)
        database.create_table("flights", flights, replace=True)

    def test_drop_table(self, flights):
        database = Database()
        database.create_table("flights", flights)
        database.drop_table("flights")
        with pytest.raises(QueryError):
            database.table("flights")

    def test_execute_sql(self, flights):
        database = Database()
        database.create_table("flights", flights)
        value = database.execute_sql(
            "SELECT COUNT(*) FROM flights WHERE origin = 'CA' AND dest = 'NY'"
        )
        assert value == 2.0

    def test_execute_sql_group_by(self, flights):
        database = Database()
        database.create_table("flights", flights)
        result = database.execute_sql(
            "SELECT origin, COUNT(*) FROM flights GROUP BY origin"
        )
        assert result.value(("CA",)) == 5.0

    def test_unknown_table_rejected(self):
        with pytest.raises(QueryError):
            Database().execute_sql("SELECT COUNT(*) FROM nope WHERE a = 1")
