"""Tests for the query AST, predicates, and workload generation."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.query import (
    AggregateFunction,
    AggregateSpec,
    Comparison,
    GroupByQuery,
    HitterKind,
    JoinGroupByQuery,
    PointQuery,
    PointQueryWorkload,
    Predicate,
    ScalarAggregateQuery,
)
from repro.schema import Attribute, Domain, Relation, Schema


@pytest.fixture
def relation() -> Relation:
    schema = Schema(
        [Attribute("state", ["CA", "NY", "WA"]), Attribute("minutes", [10, 30, 60, 120])]
    )
    rows = [
        ("CA", 10),
        ("CA", 30),
        ("CA", 120),
        ("NY", 60),
        ("NY", 10),
        ("WA", 30),
    ]
    return Relation.from_rows(schema, rows)


class TestPredicate:
    def test_equality_mask(self, relation):
        mask = Predicate("state", Comparison.EQ, "CA").mask(relation)
        assert mask.sum() == 3

    def test_inequality_mask(self, relation):
        mask = Predicate("state", Comparison.NE, "CA").mask(relation)
        assert mask.sum() == 3

    def test_ordered_masks_use_domain_order(self, relation):
        assert Predicate("minutes", Comparison.LE, 30).mask(relation).sum() == 4
        assert Predicate("minutes", Comparison.LT, 30).mask(relation).sum() == 2
        assert Predicate("minutes", Comparison.GT, 60).mask(relation).sum() == 1
        assert Predicate("minutes", Comparison.GE, 60).mask(relation).sum() == 2

    def test_in_mask(self, relation):
        mask = Predicate("state", Comparison.IN, ("NY", "WA")).mask(relation)
        assert mask.sum() == 3

    def test_unknown_value_equality_matches_nothing(self, relation):
        assert Predicate("state", Comparison.EQ, "TX").mask(relation).sum() == 0

    def test_unknown_attribute_rejected(self, relation):
        with pytest.raises(QueryError):
            Predicate("bogus", Comparison.EQ, 1).mask(relation)

    def test_matches_record(self):
        predicate = Predicate("x", Comparison.LT, 10)
        assert predicate.matches({"x": 5})
        assert not predicate.matches({"x": 20})
        assert not predicate.matches({"y": 5})


class TestQueryTypes:
    def test_point_query_normalizes_order(self):
        first = PointQuery({"b": 1, "a": 2})
        second = PointQuery({"a": 2, "b": 1})
        assert first == second
        assert first.attributes == ("a", "b")
        assert first.dimension == 2

    def test_group_by_requires_attributes(self):
        with pytest.raises(QueryError):
            GroupByQuery(group_by=())

    def test_group_by_attribute_collection(self):
        query = GroupByQuery(
            group_by=("a",),
            aggregate=AggregateSpec(AggregateFunction.AVG, "b"),
            predicates=(Predicate("c", Comparison.EQ, 1),),
        )
        assert query.attributes == ("a", "b", "c")

    def test_aggregate_spec_requires_attribute_for_avg(self):
        with pytest.raises(QueryError):
            AggregateSpec(AggregateFunction.AVG)

    def test_aggregate_spec_label(self):
        assert AggregateSpec(AggregateFunction.COUNT).label == "count(*)"
        assert AggregateSpec(AggregateFunction.SUM, "x").label == "sum(x)"

    def test_scalar_query_equality_assignment(self):
        query = ScalarAggregateQuery(
            predicates=(
                Predicate("a", Comparison.EQ, 1),
                Predicate("b", Comparison.EQ, 2),
            )
        )
        assert query.equality_assignment() == {"a": 1, "b": 2}
        ranged = ScalarAggregateQuery(predicates=(Predicate("a", Comparison.LT, 1),))
        assert ranged.equality_assignment() is None

    def test_join_query_fields(self):
        query = JoinGroupByQuery(
            left_join="dest", right_join="origin", left_group="origin", right_group="dest"
        )
        assert query.aggregate.function is AggregateFunction.COUNT


class TestWorkload:
    def test_heavy_hitters_have_larger_counts_than_light(self, relation):
        generator = PointQueryWorkload(relation, seed=0)
        heavy = generator.generate(["state"], HitterKind.HEAVY, 10)
        light = generator.generate(["state"], HitterKind.LIGHT, 10)
        assert min(item.true_value for item in heavy) >= max(
            item.true_value for item in light
        )

    def test_true_values_match_population(self, relation):
        generator = PointQueryWorkload(relation, seed=1)
        for item in generator.generate(["state", "minutes"], "random", 20):
            assert item.true_value == relation.count(item.query.as_dict())

    def test_generate_over_attribute_sets(self, relation):
        generator = PointQueryWorkload(relation, seed=2)
        workload = generator.generate_over_attribute_sets(
            [("state",), ("minutes",)], "random", 5
        )
        assert len(workload) == 10

    def test_random_attribute_sets_sizes(self, relation):
        generator = PointQueryWorkload(relation, seed=3)
        sets = generator.random_attribute_sets([1, 2], n_sets=4)
        assert len(sets) == 4
        assert all(1 <= len(attributes) <= 2 for attributes in sets)

    def test_deterministic_with_seed(self, relation):
        first = PointQueryWorkload(relation, seed=5).generate(["state"], "random", 5)
        second = PointQueryWorkload(relation, seed=5).generate(["state"], "random", 5)
        assert [item.query for item in first] == [item.query for item in second]

    def test_invalid_inputs_rejected(self, relation):
        generator = PointQueryWorkload(relation, seed=0)
        with pytest.raises(QueryError):
            generator.generate([], "random", 5)
        with pytest.raises(QueryError):
            generator.generate(["state"], "random", 0)
