"""Tests for the encoded, weighted Relation substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SchemaError, UnknownAttributeError
from repro.schema import Attribute, Domain, Relation, Schema


@pytest.fixture
def small_schema() -> Schema:
    return Schema(
        [Attribute("color", ["red", "green", "blue"]), Attribute("size", [1, 2])]
    )


@pytest.fixture
def small_relation(small_schema) -> Relation:
    rows = [("red", 1), ("green", 2), ("red", 2), ("blue", 1), ("red", 1)]
    return Relation.from_rows(small_schema, rows)


class TestConstruction:
    def test_from_rows_roundtrip(self, small_relation):
        assert small_relation.n_rows == 5
        assert small_relation.row(0) == ("red", 1)
        assert list(small_relation.iter_rows())[3] == ("blue", 1)

    def test_from_dicts(self, small_schema):
        relation = Relation.from_dicts(
            small_schema, [{"color": "blue", "size": 2}, {"color": "red", "size": 1}]
        )
        assert relation.row(0) == ("blue", 2)

    def test_from_value_columns_infers_domains(self):
        relation = Relation.from_value_columns({"a": ["x", "y", "x"], "b": [3, 1, 2]})
        assert relation.n_rows == 3
        assert set(relation.schema["a"].domain.values) == {"x", "y"}

    def test_missing_column_rejected(self, small_schema):
        with pytest.raises(SchemaError):
            Relation(small_schema, {"color": np.zeros(2, dtype=np.int64)})

    def test_mismatched_lengths_rejected(self, small_schema):
        with pytest.raises(SchemaError):
            Relation(
                small_schema,
                {"color": np.zeros(2, dtype=np.int64), "size": np.zeros(3, dtype=np.int64)},
            )

    def test_out_of_range_codes_rejected(self, small_schema):
        with pytest.raises(SchemaError):
            Relation(
                small_schema,
                {"color": np.array([5]), "size": np.array([0])},
            )

    def test_wrong_row_width_rejected(self, small_schema):
        with pytest.raises(SchemaError):
            Relation.from_rows(small_schema, [("red",)])

    def test_empty_relation(self, small_schema):
        relation = Relation.empty(small_schema)
        assert relation.n_rows == 0
        assert relation.value_counts(["color"]) == {}


class TestWeights:
    def test_default_weights_are_ones(self, small_relation):
        assert not small_relation.has_weights
        assert small_relation.weights.tolist() == [1.0] * 5
        assert small_relation.total_weight() == 5.0

    def test_with_weights(self, small_relation):
        weighted = small_relation.with_weights([2, 2, 2, 2, 2])
        assert weighted.has_weights
        assert weighted.total_weight() == 10.0
        # Original relation is unchanged (immutability).
        assert not small_relation.has_weights

    def test_negative_weights_rejected(self, small_relation):
        with pytest.raises(SchemaError):
            small_relation.with_weights([-1, 1, 1, 1, 1])

    def test_wrong_weight_length_rejected(self, small_relation):
        with pytest.raises(SchemaError):
            small_relation.with_weights([1, 2])

    def test_without_weights(self, small_relation):
        weighted = small_relation.with_weights([3] * 5)
        assert not weighted.without_weights().has_weights


class TestFilteringAndProjection:
    def test_mask_equal(self, small_relation):
        mask = small_relation.mask_equal({"color": "red"})
        assert mask.tolist() == [True, False, True, False, True]

    def test_mask_equal_unknown_value_gives_empty(self, small_relation):
        mask = small_relation.mask_equal({"color": "purple"})
        assert not mask.any()

    def test_filter_equal(self, small_relation):
        filtered = small_relation.filter_equal({"color": "red", "size": 1})
        assert filtered.n_rows == 2

    def test_project(self, small_relation):
        projected = small_relation.project(["size"])
        assert projected.attribute_names == ("size",)
        assert projected.n_rows == 5

    def test_take_preserves_weights(self, small_relation):
        weighted = small_relation.with_weights([1, 2, 3, 4, 5])
        taken = weighted.take([1, 3])
        assert taken.weights.tolist() == [2.0, 4.0]

    def test_unknown_attribute_raises(self, small_relation):
        with pytest.raises(UnknownAttributeError):
            small_relation.column("missing")

    def test_concat(self, small_relation):
        combined = small_relation.concat(small_relation)
        assert combined.n_rows == 10

    def test_concat_schema_mismatch_rejected(self, small_relation):
        other = Relation.from_value_columns({"x": [1, 2]})
        with pytest.raises(SchemaError):
            small_relation.concat(other)


class TestAggregation:
    def test_value_counts_unweighted(self, small_relation):
        counts = small_relation.value_counts(["color"])
        assert counts == {("red",): 3.0, ("green",): 1.0, ("blue",): 1.0}

    def test_value_counts_weighted(self, small_relation):
        weighted = small_relation.with_weights([10, 1, 1, 1, 1])
        counts = weighted.value_counts(["color"], weighted=True)
        assert counts[("red",)] == 12.0

    def test_count_and_contains(self, small_relation):
        assert small_relation.count({"color": "red"}) == 3
        assert small_relation.contains({"color": "blue", "size": 1})
        assert not small_relation.contains({"color": "blue", "size": 2})

    def test_marginal_distribution_sums_to_one(self, small_relation):
        marginal = small_relation.marginal_distribution(["color"])
        assert pytest.approx(sum(marginal.values())) == 1.0

    def test_distinct(self, small_relation):
        assert small_relation.distinct(["size"]) == {(1,), (2,)}

    def test_group_codes_alignment(self, small_relation):
        group_index, unique_rows = small_relation.group_codes(["color", "size"])
        assert len(group_index) == small_relation.n_rows
        assert unique_rows.shape[1] == 2


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.sampled_from(["red", "green", "blue"]), st.sampled_from([1, 2])),
        min_size=1,
        max_size=40,
    )
)
def test_value_counts_total_equals_rows(rows):
    """Property: unweighted counts always sum to the number of rows."""
    schema = Schema(
        [Attribute("color", ["red", "green", "blue"]), Attribute("size", [1, 2])]
    )
    relation = Relation.from_rows(schema, rows)
    counts = relation.value_counts(["color", "size"])
    assert sum(counts.values()) == len(rows)


@settings(max_examples=25, deadline=None)
@given(
    weights=st.lists(st.floats(0.0, 100.0), min_size=5, max_size=5),
)
def test_total_weight_matches_sum(weights):
    """Property: total_weight equals the sum of the attached weights."""
    schema = Schema(
        [Attribute("color", ["red", "green", "blue"]), Attribute("size", [1, 2])]
    )
    rows = [("red", 1), ("green", 2), ("red", 2), ("blue", 1), ("red", 1)]
    relation = Relation.from_rows(schema, rows).with_weights(weights)
    assert relation.total_weight() == pytest.approx(sum(weights))
