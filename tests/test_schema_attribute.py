"""Tests for domains, attributes, and schemas."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import DomainError, SchemaError, UnknownAttributeError
from repro.schema import Attribute, Domain, Schema


class TestDomain:
    def test_encode_decode_roundtrip(self):
        domain = Domain(["a", "b", "c"])
        for value in domain.values:
            assert domain.decode(domain.encode(value)) == value

    def test_encode_unknown_value_raises(self):
        domain = Domain(["a", "b"])
        with pytest.raises(DomainError):
            domain.encode("z")

    def test_decode_out_of_range_raises(self):
        domain = Domain(["a", "b"])
        with pytest.raises(DomainError):
            domain.decode(5)

    def test_duplicate_values_rejected(self):
        with pytest.raises(DomainError):
            Domain(["a", "a"])

    def test_empty_domain_rejected(self):
        with pytest.raises(DomainError):
            Domain([])

    def test_code_of_returns_default_for_unknown(self):
        domain = Domain(["a"])
        assert domain.code_of("missing") is None
        assert domain.code_of("missing", -1) == -1

    def test_from_values_sorts_and_dedupes(self):
        domain = Domain.from_values([3, 1, 2, 1, 3])
        assert domain.values == (1, 2, 3)

    def test_from_values_keeps_insertion_order_when_unsortable(self):
        domain = Domain.from_values(["b", 1, "a"])
        assert set(domain.values) == {"b", 1, "a"}

    def test_contains_and_len(self):
        domain = Domain(range(5))
        assert 3 in domain
        assert 9 not in domain
        assert len(domain) == 5

    def test_equality_and_hash(self):
        assert Domain([1, 2]) == Domain([1, 2])
        assert Domain([1, 2]) != Domain([2, 1])
        assert hash(Domain([1, 2])) == hash(Domain([1, 2]))

    def test_encode_many(self):
        domain = Domain(["x", "y"])
        codes = domain.encode_many(["y", "x", "y"])
        assert codes.tolist() == [1, 0, 1]

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=30, unique=True))
    def test_encode_decode_property(self, values):
        domain = Domain(values)
        assert domain.decode_many(domain.encode_many(values)) == list(values)


class TestAttribute:
    def test_size_matches_domain(self):
        attribute = Attribute("month", Domain(range(1, 13)))
        assert attribute.size == 12

    def test_accepts_iterable_domain(self):
        attribute = Attribute("flag", [True, False])
        assert attribute.size == 2

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", Domain([1]))

    def test_equality(self):
        assert Attribute("a", [1, 2]) == Attribute("a", [1, 2])
        assert Attribute("a", [1, 2]) != Attribute("b", [1, 2])


class TestSchema:
    def test_lookup_by_name(self):
        schema = Schema([Attribute("x", [1]), Attribute("y", [1, 2])])
        assert schema["y"].size == 2
        assert schema.names == ("x", "y")

    def test_unknown_attribute_raises(self):
        schema = Schema([Attribute("x", [1])])
        with pytest.raises(UnknownAttributeError):
            schema["missing"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("x", [1]), Attribute("x", [2])])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_project_preserves_order(self):
        schema = Schema([Attribute("a", [1]), Attribute("b", [1]), Attribute("c", [1])])
        projected = schema.project(["c", "a"])
        assert projected.names == ("c", "a")

    def test_index_of(self):
        schema = Schema([Attribute("a", [1]), Attribute("b", [1])])
        assert schema.index_of("b") == 1

    def test_domain_sizes(self):
        schema = Schema([Attribute("a", [1, 2]), Attribute("b", [1, 2, 3])])
        assert schema.domain_sizes() == {"a": 2, "b": 3}
