"""Tests for the open-world evaluators (sample, Bayesian network, hybrid)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregates import AggregateQuery, AggregateSet
from repro.bayesnet import LearningMode, ThemisBayesNetLearner
from repro.core import BayesNetEvaluator, HybridEvaluator, ReweightedSampleEvaluator
from repro.exceptions import QueryError
from repro.metrics import percent_difference
from repro.query import (
    AggregateFunction,
    AggregateSpec,
    Comparison,
    GroupByQuery,
    PointQuery,
    Predicate,
    ScalarAggregateQuery,
)
from repro.reweighting import IPFReweighter
from repro.sql.engine import WeightedQueryEngine


@pytest.fixture
def fitted_components(correlated_population, biased_correlated_sample, correlated_aggregates):
    """IPF-weighted sample and BB network for the correlated dataset."""
    n = correlated_population.n_rows
    weighted = IPFReweighter(max_iterations=60).reweight(
        biased_correlated_sample, correlated_aggregates
    )
    learner = ThemisBayesNetLearner.from_mode(LearningMode.BB)
    network = learner.learn(
        biased_correlated_sample, correlated_aggregates, population_size=n
    ).network
    bn_evaluator = BayesNetEvaluator(
        network, population_size=n, n_generated_samples=4, generated_sample_size=800, seed=3
    )
    return weighted, bn_evaluator, n


class TestReweightedSampleEvaluator:
    def test_point_matches_engine(self, fitted_components):
        weighted, _, _ = fitted_components
        evaluator = ReweightedSampleEvaluator(weighted)
        engine = WeightedQueryEngine(weighted)
        assert evaluator.point({"A": 0}) == engine.point({"A": 0})

    def test_execute_dispatch(self, fitted_components):
        weighted, _, _ = fitted_components
        evaluator = ReweightedSampleEvaluator(weighted)
        assert evaluator.execute(PointQuery({"A": 0})) == evaluator.point({"A": 0})
        result = evaluator.execute(GroupByQuery(group_by=("A",)))
        assert len(result) >= 1

    def test_unknown_query_type_rejected(self, fitted_components):
        weighted, _, _ = fitted_components
        with pytest.raises(QueryError) as excinfo:
            ReweightedSampleEvaluator(weighted).execute("not a query")
        # The error names the offending query itself, not just its type.
        assert "str" in str(excinfo.value)
        assert repr("not a query") in str(excinfo.value)


class TestBayesNetEvaluator:
    def test_point_is_population_scaled_probability(self, fitted_components, correlated_population):
        _, bn_evaluator, n = fitted_components
        estimate = bn_evaluator.point({"A": 1})
        truth = correlated_population.count({"A": 1})
        assert percent_difference(truth, estimate) < 25

    def test_point_out_of_domain_is_zero(self, fitted_components):
        _, bn_evaluator, _ = fitted_components
        assert bn_evaluator.point({"A": 99}) == 0.0

    def test_group_by_total_close_to_population(self, fitted_components, correlated_population):
        _, bn_evaluator, n = fitted_components
        result = bn_evaluator.group_by(GroupByQuery(group_by=("A",)))
        assert sum(result.as_dict().values()) == pytest.approx(n, rel=0.1)

    def test_group_by_is_cached_across_calls(self, fitted_components):
        _, bn_evaluator, _ = fitted_components
        first = bn_evaluator.group_by(GroupByQuery(group_by=("A",))).as_dict()
        second = bn_evaluator.group_by(GroupByQuery(group_by=("A",))).as_dict()
        assert first == second

    def test_scalar_query(self, fitted_components):
        _, bn_evaluator, n = fitted_components
        value = bn_evaluator.scalar(
            ScalarAggregateQuery(predicates=(Predicate("A", Comparison.LE, 1),))
        )
        assert 0 < value < n * 1.2

    def test_invalid_population_size_rejected(self, fitted_components):
        _, bn_evaluator, _ = fitted_components
        with pytest.raises(QueryError):
            BayesNetEvaluator(bn_evaluator.network, population_size=0)


class TestHybridEvaluator:
    def test_point_uses_sample_when_tuple_present(self, fitted_components):
        weighted, bn_evaluator, _ = fitted_components
        hybrid = HybridEvaluator(weighted, bn_evaluator)
        sample_answer = ReweightedSampleEvaluator(weighted).point({"A": 0, "B": 0})
        assert hybrid.point({"A": 0, "B": 0}) == sample_answer

    def test_point_falls_back_to_bn_for_missing_tuple(self, fitted_components):
        weighted, bn_evaluator, _ = fitted_components
        hybrid = HybridEvaluator(weighted, bn_evaluator)
        # Find an assignment absent from the sample (if none exists, fabricate
        # one by checking the rarest combination).
        missing = None
        for a in (2, 1, 0):
            for b in (2, 1, 0):
                for c in (1, 0):
                    if not weighted.contains({"A": a, "B": b, "C": c}):
                        missing = {"A": a, "B": b, "C": c}
                        break
        if missing is None:
            pytest.skip("sample covers the full domain for this seed")
        assert hybrid.point(missing) == bn_evaluator.point(missing)

    def test_group_by_union_includes_bn_only_groups(self, fitted_components):
        weighted, bn_evaluator, _ = fitted_components
        hybrid = HybridEvaluator(weighted, bn_evaluator)
        query = GroupByQuery(group_by=("A", "B", "C"))
        sample_groups = ReweightedSampleEvaluator(weighted).group_by(query).groups()
        hybrid_groups = hybrid.group_by(query).groups()
        assert sample_groups <= hybrid_groups

    def test_group_by_prefers_sample_values_for_shared_groups(self, fitted_components):
        weighted, bn_evaluator, _ = fitted_components
        hybrid = HybridEvaluator(weighted, bn_evaluator)
        query = GroupByQuery(group_by=("A",))
        sample_result = ReweightedSampleEvaluator(weighted).group_by(query)
        hybrid_result = hybrid.group_by(query)
        for group in sample_result.groups():
            assert hybrid_result.value(group) == sample_result.value(group)

    def test_scalar_uses_bn_when_sample_filtered_empty(self, fitted_components):
        weighted, bn_evaluator, _ = fitted_components
        hybrid = HybridEvaluator(weighted, bn_evaluator)
        query = ScalarAggregateQuery(
            predicates=(Predicate("A", Comparison.EQ, 99),)
        )
        assert hybrid.scalar(query) == bn_evaluator.scalar(query)

    def test_hybrid_more_accurate_than_sample_on_missing_tuples(
        self, fitted_components, correlated_population
    ):
        """The hybrid's whole point: missing tuples get non-zero BN answers."""
        weighted, bn_evaluator, _ = fitted_components
        hybrid = HybridEvaluator(weighted, bn_evaluator)
        sample_evaluator = ReweightedSampleEvaluator(weighted)
        improvements = 0
        comparisons = 0
        for a in (0, 1, 2):
            for b in (0, 1, 2):
                for c in (0, 1):
                    assignment = {"A": a, "B": b, "C": c}
                    if weighted.contains(assignment):
                        continue
                    truth = correlated_population.count(assignment)
                    if truth == 0:
                        continue
                    comparisons += 1
                    hybrid_error = percent_difference(truth, hybrid.point(assignment))
                    sample_error = percent_difference(
                        truth, sample_evaluator.point(assignment)
                    )
                    if hybrid_error <= sample_error:
                        improvements += 1
        if comparisons == 0:
            pytest.skip("sample covers every populated combination for this seed")
        assert improvements == comparisons
