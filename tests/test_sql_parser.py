"""Tests for the SQL parser."""

from __future__ import annotations

import pytest

from repro.exceptions import SQLSyntaxError
from repro.query import (
    AggregateFunction,
    Comparison,
    GroupByQuery,
    PointQuery,
    ScalarAggregateQuery,
)
from repro.sql import parse_sql


class TestPointQueries:
    def test_simple_point_query(self):
        parsed = parse_sql(
            "SELECT COUNT(*) FROM flights WHERE origin_state = 'CA' AND dest_state = 'NY'"
        )
        assert parsed.table == "flights"
        assert isinstance(parsed.query, PointQuery)
        assert parsed.query.as_dict() == {"origin_state": "CA", "dest_state": "NY"}

    def test_numeric_literals(self):
        parsed = parse_sql("SELECT COUNT(*) FROM t WHERE a = 3 AND b = 2.5")
        assert parsed.query.as_dict() == {"a": 3, "b": 2.5}

    def test_case_insensitive_keywords(self):
        parsed = parse_sql("select count(*) from t where a = 'x'")
        assert isinstance(parsed.query, PointQuery)

    def test_trailing_semicolon(self):
        parsed = parse_sql("SELECT COUNT(*) FROM t WHERE a = 'x';")
        assert parsed.query.as_dict() == {"a": "x"}


class TestScalarQueries:
    def test_motivating_example_query(self):
        """The paper's Sec. 2 query parses to a filtered scalar aggregate."""
        parsed = parse_sql(
            "SELECT SUM(weight) AS num_flights FROM flights "
            "WHERE flight_time <= 30 AND origin_state = 'CA'"
        )
        assert isinstance(parsed.query, ScalarAggregateQuery)
        # SUM(weight) is treated as the weighted COUNT(*).
        assert parsed.query.aggregate.function is AggregateFunction.COUNT
        comparisons = {p.attribute: p.comparison for p in parsed.query.predicates}
        assert comparisons == {"flight_time": Comparison.LE, "origin_state": Comparison.EQ}

    def test_avg_without_group_by(self):
        parsed = parse_sql("SELECT AVG(elapsed_time) FROM flights WHERE origin = 'CA'")
        assert isinstance(parsed.query, ScalarAggregateQuery)
        assert parsed.query.aggregate.function is AggregateFunction.AVG
        assert parsed.query.aggregate.attribute == "elapsed_time"


class TestGroupByQueries:
    def test_explicit_group_by(self):
        parsed = parse_sql(
            "SELECT origin_state, COUNT(*) FROM flights GROUP BY origin_state"
        )
        assert isinstance(parsed.query, GroupByQuery)
        assert parsed.query.group_by == ("origin_state",)

    def test_implicit_group_by_from_select_list(self):
        parsed = parse_sql("SELECT origin_state, AVG(elapsed_time) FROM flights")
        assert isinstance(parsed.query, GroupByQuery)
        assert parsed.query.group_by == ("origin_state",)
        assert parsed.query.aggregate.function is AggregateFunction.AVG

    def test_group_by_with_filters(self):
        parsed = parse_sql(
            "SELECT dest_state, COUNT(*) FROM flights WHERE elapsed_time < 120 "
            "GROUP BY dest_state"
        )
        assert parsed.query.predicates[0].comparison is Comparison.LT

    def test_in_predicate(self):
        parsed = parse_sql(
            "SELECT dest_state, COUNT(*) FROM flights "
            "WHERE dest_state IN ('CO', 'WY') GROUP BY dest_state"
        )
        predicate = parsed.query.predicates[0]
        assert predicate.comparison is Comparison.IN
        assert predicate.value == ("CO", "WY")

    def test_alias_stripping(self):
        parsed = parse_sql(
            "SELECT t.origin_state, COUNT(*) FROM flights GROUP BY t.origin_state"
        )
        assert parsed.query.group_by == ("origin_state",)

    def test_multiple_group_by_columns(self):
        parsed = parse_sql(
            "SELECT a, b, COUNT(*) FROM t GROUP BY a, b"
        )
        assert parsed.query.group_by == ("a", "b")


class TestErrors:
    def test_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("DELETE FROM t")

    def test_two_aggregates_parse_to_analytic_query(self):
        from repro.query import AnalyticQuery

        parsed = parse_sql("SELECT COUNT(*), SUM(x) FROM t")
        assert isinstance(parsed.query, AnalyticQuery)
        assert [spec.expression for spec in parsed.query.aggregates] == [
            "count(*)",
            "sum(x)",
        ]

    def test_bad_condition_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT COUNT(*) FROM t WHERE ???")

class TestAnalyticParsing:
    def test_full_pipeline_statement(self):
        from repro.query import AnalyticQuery, WindowFunction

        parsed = parse_sql(
            "SELECT state, COUNT(*) AS n, AVG(delay) AS mean, "
            "RANK() OVER (PARTITION BY state ORDER BY n DESC) AS r "
            "FROM flights WHERE carrier = 'AA' GROUP BY state "
            "HAVING n > 2 ORDER BY r, state LIMIT 5"
        )
        query = parsed.query
        assert isinstance(query, AnalyticQuery)
        assert query.group_by == ("state",)
        assert [spec.label for spec in query.aggregates] == ["n", "mean"]
        assert query.having[0].target == "n" and query.having[0].value == 2
        assert query.windows[0].function is WindowFunction.RANK
        assert query.windows[0].partition_by == ("state",)
        assert [key.target for key in query.order_by] == ["r", "state"]
        assert query.limit == 5

    def test_sum_weight_window_is_weighted_count_window(self):
        from repro.query import AnalyticQuery

        parsed = parse_sql(
            "SELECT a, COUNT(*) AS n, SUM(n) OVER (ORDER BY a) AS running "
            "FROM t GROUP BY a"
        )
        assert isinstance(parsed.query, AnalyticQuery)
        window = parsed.query.windows[0]
        assert window.target == "n" and window.order_by[0].target == "a"


class TestMalformedStatements:
    """Malformed SQL raises SQLSyntaxError with an actionable message."""

    @pytest.mark.parametrize(
        "sql, fragment",
        [
            ("SELECT COUNT(*) FROM t WHERE a = 'CA", "unterminated string"),
            ("SELECT COUNT(*) FROM t WHERE a IN ()", "at least one value"),
            (
                "SELECT a, COUNT(*) FROM t GROUP BY a GROUP BY b",
                "duplicate or misplaced GROUP clause",
            ),
            ("SELECT COUNT(*) FROM", "expected a table name"),
            (
                "SELECT a, COUNT(*) AS n, RANK() OVER (ORDER BY n) FROM t GROUP BY a",
                "need an AS alias",
            ),
            (
                "SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING n > 'x'",
                "numeric literal",
            ),
            (
                "SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING n > true",
                "numeric literal",
            ),
            ("SELECT AVG(*) FROM t", "AVG(*)"),
            (
                "SELECT a, AVG(x) OVER (ORDER BY a) AS w FROM t GROUP BY a",
                "only SUM(...) OVER and RANK() OVER",
            ),
            (
                "SELECT a, COUNT(*) AS n, RANK() OVER (PARTITION BY a) AS r "
                "FROM t GROUP BY a",
                "requires ORDER BY",
            ),
            ("SELECT COUNT(*) FROM t WHERE a = $", "unexpected character '$'"),
            ("SELECT COUNT(*) FROM t LIMIT x", "LIMIT expects an integer"),
            ("SELECT COUNT(*) FROM t LIMIT -3", "LIMIT expects an integer"),
            ("SELECT FROM t", "expected 'FROM'"),
            ("", "expected 'SELECT'"),
            ("SELECT RANK() FROM t", "OVER"),
        ],
    )
    def test_rejected_with_message(self, sql, fragment):
        with pytest.raises(SQLSyntaxError) as excinfo:
            parse_sql(sql)
        assert fragment in str(excinfo.value)

    def test_semicolon_inside_string_is_data(self):
        parsed = parse_sql("SELECT COUNT(*) FROM t WHERE a = ';'")
        assert parsed.query.as_dict() == {"a": ";"}

    def test_unknown_order_target_fails_at_compile_with_columns(self):
        """Name resolution is the compiler's job; its error lists columns."""
        from repro.exceptions import QueryError
        from repro.schema import Attribute, Domain, Relation, Schema
        from repro.sql import WeightedQueryEngine

        relation = Relation(
            Schema([Attribute("a", Domain(["x", "y"]))]), {"a": [0, 1]}
        )
        parsed = parse_sql("SELECT a, COUNT(*) AS n FROM t GROUP BY a ORDER BY zz")
        with pytest.raises(QueryError) as excinfo:
            WeightedQueryEngine(relation).execute(parsed.query)
        message = str(excinfo.value)
        assert "zz" in message and "available columns" in message


class TestParserFuzz:
    """Token-level fuzzing: the parser either parses or raises SQLSyntaxError.

    Whatever mutation the statement suffers — dropped, duplicated, or
    shuffled tokens, injected garbage — the parser must never escape with
    an internal error (IndexError, AttributeError, ...).  Seeds are in the
    assertion message for replay.
    """

    SEED_STATEMENTS = [
        "SELECT COUNT(*) FROM flights WHERE origin = 'CA' AND delay <= 30",
        "SELECT state, carrier, COUNT(*) AS n, AVG(delay) AS mean FROM flights "
        "WHERE dest IN ('NY', 'TX') GROUP BY state, carrier "
        "HAVING n >= 2 ORDER BY mean DESC, state LIMIT 7",
        "SELECT state, COUNT(*) AS n, SUM(delay) AS total, "
        "RANK() OVER (PARTITION BY state ORDER BY n DESC) AS r, "
        "SUM(n) OVER (ORDER BY state) AS running "
        "FROM flights GROUP BY state ORDER BY r",
    ]
    GARBAGE = ["(", ")", ",", "SELECT", "OVER", "'", "*", ";", "123", "?", "AS"]

    def test_mutated_statements_never_crash(self):
        import numpy as np

        from repro.exceptions import SQLSyntaxError

        rng = np.random.default_rng(1337)
        for trial in range(300):
            tokens = self.SEED_STATEMENTS[trial % len(self.SEED_STATEMENTS)].split()
            mutation = trial % 4
            position = int(rng.integers(len(tokens)))
            if mutation == 0:
                del tokens[position]
            elif mutation == 1:
                tokens.insert(position, self.GARBAGE[int(rng.integers(len(self.GARBAGE)))])
            elif mutation == 2:
                other = int(rng.integers(len(tokens)))
                tokens[position], tokens[other] = tokens[other], tokens[position]
            else:
                tokens[position] = tokens[position][: max(0, len(tokens[position]) - 1)]
            sql = " ".join(tokens)
            try:
                parse_sql(sql)
            except SQLSyntaxError:
                pass
            except Exception as error:  # pragma: no cover - the failure path
                raise AssertionError(
                    f"trial={trial}: parser escaped with "
                    f"{type(error).__name__}: {error} on {sql!r}"
                ) from error
