"""Tests for the SQL parser."""

from __future__ import annotations

import pytest

from repro.exceptions import SQLSyntaxError
from repro.query import (
    AggregateFunction,
    Comparison,
    GroupByQuery,
    PointQuery,
    ScalarAggregateQuery,
)
from repro.sql import parse_sql


class TestPointQueries:
    def test_simple_point_query(self):
        parsed = parse_sql(
            "SELECT COUNT(*) FROM flights WHERE origin_state = 'CA' AND dest_state = 'NY'"
        )
        assert parsed.table == "flights"
        assert isinstance(parsed.query, PointQuery)
        assert parsed.query.as_dict() == {"origin_state": "CA", "dest_state": "NY"}

    def test_numeric_literals(self):
        parsed = parse_sql("SELECT COUNT(*) FROM t WHERE a = 3 AND b = 2.5")
        assert parsed.query.as_dict() == {"a": 3, "b": 2.5}

    def test_case_insensitive_keywords(self):
        parsed = parse_sql("select count(*) from t where a = 'x'")
        assert isinstance(parsed.query, PointQuery)

    def test_trailing_semicolon(self):
        parsed = parse_sql("SELECT COUNT(*) FROM t WHERE a = 'x';")
        assert parsed.query.as_dict() == {"a": "x"}


class TestScalarQueries:
    def test_motivating_example_query(self):
        """The paper's Sec. 2 query parses to a filtered scalar aggregate."""
        parsed = parse_sql(
            "SELECT SUM(weight) AS num_flights FROM flights "
            "WHERE flight_time <= 30 AND origin_state = 'CA'"
        )
        assert isinstance(parsed.query, ScalarAggregateQuery)
        # SUM(weight) is treated as the weighted COUNT(*).
        assert parsed.query.aggregate.function is AggregateFunction.COUNT
        comparisons = {p.attribute: p.comparison for p in parsed.query.predicates}
        assert comparisons == {"flight_time": Comparison.LE, "origin_state": Comparison.EQ}

    def test_avg_without_group_by(self):
        parsed = parse_sql("SELECT AVG(elapsed_time) FROM flights WHERE origin = 'CA'")
        assert isinstance(parsed.query, ScalarAggregateQuery)
        assert parsed.query.aggregate.function is AggregateFunction.AVG
        assert parsed.query.aggregate.attribute == "elapsed_time"


class TestGroupByQueries:
    def test_explicit_group_by(self):
        parsed = parse_sql(
            "SELECT origin_state, COUNT(*) FROM flights GROUP BY origin_state"
        )
        assert isinstance(parsed.query, GroupByQuery)
        assert parsed.query.group_by == ("origin_state",)

    def test_implicit_group_by_from_select_list(self):
        parsed = parse_sql("SELECT origin_state, AVG(elapsed_time) FROM flights")
        assert isinstance(parsed.query, GroupByQuery)
        assert parsed.query.group_by == ("origin_state",)
        assert parsed.query.aggregate.function is AggregateFunction.AVG

    def test_group_by_with_filters(self):
        parsed = parse_sql(
            "SELECT dest_state, COUNT(*) FROM flights WHERE elapsed_time < 120 "
            "GROUP BY dest_state"
        )
        assert parsed.query.predicates[0].comparison is Comparison.LT

    def test_in_predicate(self):
        parsed = parse_sql(
            "SELECT dest_state, COUNT(*) FROM flights "
            "WHERE dest_state IN ('CO', 'WY') GROUP BY dest_state"
        )
        predicate = parsed.query.predicates[0]
        assert predicate.comparison is Comparison.IN
        assert predicate.value == ("CO", "WY")

    def test_alias_stripping(self):
        parsed = parse_sql(
            "SELECT t.origin_state, COUNT(*) FROM flights GROUP BY t.origin_state"
        )
        assert parsed.query.group_by == ("origin_state",)

    def test_multiple_group_by_columns(self):
        parsed = parse_sql(
            "SELECT a, b, COUNT(*) FROM t GROUP BY a, b"
        )
        assert parsed.query.group_by == ("a", "b")


class TestErrors:
    def test_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("DELETE FROM t")

    def test_two_aggregates_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT COUNT(*), SUM(x) FROM t")

    def test_bad_condition_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT COUNT(*) FROM t WHERE ???")
