"""Deterministic test worlds shared by fixtures and importing test modules.

These live outside ``conftest.py`` so test modules can import them by a
unique module name: a bare ``from conftest import ...`` is ambiguous when
pytest collects ``tests/`` and ``benchmarks/`` in one run (both conftest
files compete for the ``conftest`` module slot).
"""

from __future__ import annotations

import numpy as np

from repro.aggregates import AggregateQuery, AggregateSet
from repro.core import Themis, ThemisConfig
from repro.schema import Attribute, Domain, Relation, Schema


def build_correlated_population() -> Relation:
    """The deterministic 3-attribute correlated population (builder form)."""
    rng = np.random.default_rng(123)
    n = 4000
    a = rng.choice(3, size=n, p=[0.6, 0.3, 0.1])
    b_table = np.array([[0.7, 0.2, 0.1], [0.2, 0.6, 0.2], [0.1, 0.3, 0.6]])
    b = np.array([rng.choice(3, p=b_table[value]) for value in a])
    c_table = np.array([[0.9, 0.1], [0.5, 0.5], [0.2, 0.8]])
    c = np.array([rng.choice(2, p=c_table[value]) for value in b])
    schema = Schema(
        [
            Attribute("A", Domain([0, 1, 2])),
            Attribute("B", Domain([0, 1, 2])),
            Attribute("C", Domain([0, 1])),
        ]
    )
    return Relation(schema, {"A": a, "B": b, "C": c})


def build_biased_correlated_sample(population: Relation) -> Relation:
    """The deterministic biased sample of the correlated population."""
    rng = np.random.default_rng(7)
    a = population.column("A")
    eligible = np.where((a == 0) | (rng.random(population.n_rows) < 0.1))[0]
    chosen = rng.choice(eligible, size=600, replace=False)
    return population.take(np.sort(chosen))


def build_correlated_aggregates(population: Relation) -> AggregateSet:
    """The 1D and 2D aggregate set of the correlated population."""
    return AggregateSet(
        [
            AggregateQuery.from_relation(population, ["A"]),
            AggregateQuery.from_relation(population, ["A", "B"]),
            AggregateQuery.from_relation(population, ["B", "C"]),
        ]
    )


def build_fitted_themis() -> Themis:
    """A small fitted Themis over the correlated population's biased sample."""
    population = build_correlated_population()
    themis = Themis(
        ThemisConfig(
            seed=1,
            ipf_max_iterations=40,
            n_generated_samples=3,
            generated_sample_size=400,
        )
    )
    themis.load_sample(build_biased_correlated_sample(population))
    themis.add_aggregates(build_correlated_aggregates(population))
    themis.fit()
    return themis


def build_sparse_fitted_themis() -> Themis:
    """A facade fitted on a very sparse sample, so many tuples route to the BN."""
    population = build_correlated_population()
    themis = Themis(
        ThemisConfig(
            seed=3,
            ipf_max_iterations=20,
            n_generated_samples=2,
            generated_sample_size=200,
        )
    )
    themis.load_sample(build_biased_correlated_sample(population).take(np.arange(30)))
    themis.add_aggregates(build_correlated_aggregates(population))
    themis.fit()
    return themis
