"""Tests for the ``python -m repro.experiments`` command-line runner."""

from __future__ import annotations

import pytest

from repro.experiments.cli import (
    available_experiments,
    build_parser,
    main,
    resolve_scale,
)
from repro.experiments.config import PAPER_SCALE, SMALL_SCALE, TINY_SCALE


class TestRegistry:
    def test_every_paper_artifact_has_an_entry(self):
        names = set(available_experiments())
        expected = {
            "table1",
            "table4",
            "table6",
            "table7",
            "table8",
            "ablation",
            "serving",
            "bn_batch",
            "plan_ir",
            "plan_fusion",
            "join_fusion",
        } | {f"fig{i}" for i in range(3, 17)}
        assert expected <= names

    def test_resolve_scale_names(self):
        assert resolve_scale("tiny") is TINY_SCALE
        assert resolve_scale("small") is SMALL_SCALE
        assert resolve_scale("paper") is PAPER_SCALE

    def test_resolve_scale_override(self):
        scale = resolve_scale("tiny", flights_rows=1234)
        assert scale.flights_rows == 1234
        assert scale.n_queries == TINY_SCALE.n_queries

    def test_resolve_unknown_scale(self):
        with pytest.raises(SystemExit):
            resolve_scale("huge")


class TestCLI:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "fig3" in output and "table8" in output

    def test_no_arguments_lists_experiments(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_runs_one_experiment(self, capsys):
        assert main(["table1", "--scale", "tiny"]) == 0
        output = capsys.readouterr().out
        assert "table-1" in output and "Motivating example" in output

    def test_runs_ablation(self, capsys):
        assert main(["ablation", "--scale", "tiny"]) == 0
        assert "per-factor" in capsys.readouterr().out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig3"])
        assert args.scale == "small"
        assert args.experiments == ["fig3"]
