"""Tests for the synthetic dataset generators and biased samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregates import information_content_of_relation
from repro.data import (
    CHILD_CARDINALITIES,
    CHILD_EDGES,
    CORNER_STATES,
    biased_sample,
    child_network,
    generate_child_population,
    generate_flights_population,
    generate_imdb_population,
    load_child,
    load_flights,
    load_imdb,
    uniform_sample,
)
from repro.exceptions import ThemisError


class TestFlightsGenerator:
    @pytest.fixture(scope="class")
    def population(self):
        return generate_flights_population(n_rows=8000, seed=3)

    def test_schema_attributes(self, population):
        assert population.attribute_names == (
            "fl_date",
            "origin_state",
            "dest_state",
            "elapsed_time",
            "distance",
        )
        assert population.n_rows == 8000

    def test_deterministic_for_seed(self):
        first = generate_flights_population(n_rows=500, seed=9)
        second = generate_flights_population(n_rows=500, seed=9)
        assert list(first.iter_rows()) == list(second.iter_rows())

    def test_hub_states_dominate(self, population):
        counts = population.value_counts(["origin_state"])
        ca = counts.get(("CA",), 0)
        me = counts.get(("ME",), 0)
        assert ca > 5 * max(me, 1)

    def test_distance_elapsed_time_correlated(self, population):
        """The E-DT correlation the paper's LinReg analysis relies on."""
        assert information_content_of_relation(
            population, ["elapsed_time", "distance"]
        ) > 0.3

    def test_origin_dest_correlated(self, population):
        assert information_content_of_relation(
            population, ["origin_state", "dest_state"]
        ) > 0.05


class TestIMDBGenerator:
    @pytest.fixture(scope="class")
    def population(self):
        return generate_imdb_population(n_rows=6000, n_names=300, seed=5)

    def test_schema_attributes(self, population):
        assert "name" in population.attribute_names
        assert population.schema["name"].size == 300
        assert population.schema["movie_country"].size == 3

    def test_name_is_dense_attribute(self, population):
        distinct_names = len(population.distinct(["name"]))
        assert distinct_names > 100

    def test_gender_is_functionally_determined_by_name(self, population):
        """Each name maps to exactly one gender (actor identity)."""
        pairs = population.value_counts(["name", "gender"])
        names = {}
        for (name, gender), _ in pairs.items():
            names.setdefault(name, set()).add(gender)
        assert all(len(genders) == 1 for genders in names.values())

    def test_rating_correlates_with_rank(self, population):
        assert information_content_of_relation(
            population, ["rating", "top_250_rank"]
        ) > 0.02


class TestChildGenerator:
    def test_network_structure(self):
        network = child_network(seed=1)
        assert len(network.nodes) == 20
        assert set(network.graph.edges) == set(CHILD_EDGES)
        for node, cardinality in CHILD_CARDINALITIES.items():
            assert network.schema[node].size == cardinality

    def test_population_sampled_from_network(self):
        population, network = generate_child_population(n_rows=3000, seed=2)
        assert population.n_rows == 3000
        assert population.attribute_names == network.schema.names

    def test_cpts_normalized(self):
        network = child_network(seed=4)
        for node in network.nodes:
            assert network.cpt(node).is_normalized()


class TestSamplers:
    @pytest.fixture(scope="class")
    def population(self):
        return generate_flights_population(n_rows=6000, seed=13)

    def test_uniform_sample_size(self, population):
        sample = uniform_sample(population, 0.1, seed=0)
        assert sample.n_rows == 600

    def test_biased_sample_fraction_of_matching_rows(self, population):
        sample = biased_sample(
            population, {"origin_state": list(CORNER_STATES)}, 0.1, bias=0.9, seed=0
        )
        matching = sum(
            1 for row in sample.iter_rows() if row[1] in CORNER_STATES
        )
        assert matching / sample.n_rows == pytest.approx(0.9, abs=0.03)

    def test_fully_biased_sample_has_only_matching_rows(self, population):
        sample = biased_sample(
            population, {"origin_state": list(CORNER_STATES)}, 0.1, bias=1.0, seed=1
        )
        assert all(row[1] in CORNER_STATES for row in sample.iter_rows())

    def test_callable_selection(self, population):
        sample = biased_sample(
            population,
            lambda relation: relation.column("fl_date") == 5,
            0.05,
            bias=1.0,
            seed=2,
        )
        assert sample.n_rows > 0

    def test_invalid_fraction_rejected(self, population):
        with pytest.raises(ThemisError):
            uniform_sample(population, 0.0)
        with pytest.raises(ThemisError):
            biased_sample(population, {"fl_date": "01"}, 1.5)

    def test_invalid_bias_rejected(self, population):
        with pytest.raises(ThemisError):
            biased_sample(population, {"fl_date": "01"}, 0.1, bias=2.0)

    def test_empty_selection_rejected(self, population):
        with pytest.raises(ThemisError):
            biased_sample(population, {"origin_state": "ZZ"}, 0.1)


class TestRegistry:
    def test_load_flights_bundle(self):
        bundle = load_flights(n_rows=3000, seed=1)
        assert set(bundle.samples) == {"Unif", "June", "SCorners", "Corners"}
        assert bundle.population_size == 3000
        assert all(sample.n_rows == 300 for sample in bundle.samples.values())

    def test_load_imdb_bundle(self):
        bundle = load_imdb(n_rows=2000, seed=1)
        assert set(bundle.samples) == {"Unif", "GB", "SR159", "R159"}
        assert bundle.aggregate_attributes == (
            "movie_year",
            "movie_country",
            "gender",
            "rating",
            "runtime",
        )

    def test_load_child_bundle_has_true_network(self):
        bundle = load_child(n_rows=1500, seed=1)
        assert "true_network" in bundle.extra
        assert set(bundle.samples) == {"Unif"}

    def test_bundle_aggregates_and_pruning(self):
        bundle = load_flights(n_rows=3000, seed=2)
        aggregates = bundle.aggregates([("origin_state",), ("fl_date", "origin_state")])
        assert len(aggregates) == 2
        pruned = bundle.pruned_attribute_sets(2, 3)
        assert len(pruned) == 3
        assert all(len(attributes) == 2 for attributes in pruned)

    def test_unknown_sample_rejected(self):
        bundle = load_flights(n_rows=2000, seed=3)
        with pytest.raises(Exception):
            bundle.sample("nope")
