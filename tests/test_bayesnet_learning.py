"""Tests for BN scoring, structure learning, parameter learning, and modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregates import AggregateQuery, AggregateSet
from repro.bayesnet import (
    AggregateCountSource,
    DirectedAcyclicGraph,
    ExactInference,
    GreedyHillClimbing,
    LearningMode,
    ParameterLearner,
    SampleCountSource,
    ThemisBayesNetLearner,
    family_bic,
    family_log_likelihood,
    structure_bic,
)
from repro.exceptions import BayesNetError
from repro.schema import Attribute, Domain, Relation, Schema


class TestCountSources:
    def test_sample_counts_match_relation(self, correlated_population):
        source = SampleCountSource(correlated_population)
        counts = source.counts("B", ("A",))
        assert counts.sum() == correlated_population.n_rows
        assert source.total() == correlated_population.n_rows
        assert source.supports(["A", "B"])

    def test_aggregate_counts_from_covering_aggregate(
        self, correlated_population, correlated_aggregates
    ):
        source = AggregateCountSource(
            correlated_aggregates, correlated_population.schema
        )
        assert source.supports(["A", "B"])
        assert not source.supports(["A", "C"])
        counts = source.counts("B", ("A",))
        truth = correlated_population.value_counts(["A", "B"])
        assert counts.sum() == pytest.approx(sum(truth.values()))

    def test_aggregate_counts_missing_family_rejected(
        self, correlated_population, correlated_aggregates
    ):
        source = AggregateCountSource(
            correlated_aggregates, correlated_population.schema
        )
        with pytest.raises(BayesNetError):
            source.counts("C", ("A",))

    def test_family_log_likelihood_zero_counts(self):
        assert family_log_likelihood(np.zeros((2, 3))) == 0.0

    def test_family_bic_penalizes_parents(self, correlated_population):
        source = SampleCountSource(correlated_population)
        schema = correlated_population.schema
        independent = family_bic("C", (), source, schema)
        dependent = family_bic("C", ("B",), source, schema)
        # C depends on B strongly, so the extra parameters pay off.
        assert dependent > independent

    def test_structure_bic_total(self, correlated_population):
        source = SampleCountSource(correlated_population)
        schema = correlated_population.schema
        empty = structure_bic({"A": (), "B": (), "C": ()}, source, schema)
        chained = structure_bic({"A": (), "B": ("A",), "C": ("B",)}, source, schema)
        assert chained > empty


class TestStructureLearning:
    def test_learns_dependencies_from_sample(self, correlated_population):
        climber = GreedyHillClimbing(max_parents=1)
        graph, report = climber.learn(
            correlated_population.schema,
            correlated_population,
            aggregates=None,
            use_aggregate_phase=False,
        )
        connected = {frozenset(edge) for edge in graph.edges}
        assert frozenset({"A", "B"}) in connected
        assert frozenset({"B", "C"}) in connected
        assert report.n_iterations >= 2

    def test_aggregate_phase_only_uses_supported_edges(
        self, biased_correlated_sample, correlated_aggregates, correlated_population
    ):
        climber = GreedyHillClimbing(max_parents=1)
        graph, report = climber.learn(
            correlated_population.schema,
            None,
            correlated_aggregates,
            use_sample_phase=False,
        )
        for parent, child in graph.edges:
            assert correlated_aggregates.best_covering([parent, child]) is not None
        assert set(report.phase1_edges) == set(graph.edges)

    def test_phase1_edges_are_locked(self, biased_correlated_sample, correlated_aggregates):
        climber = GreedyHillClimbing(max_parents=1)
        graph, report = climber.learn(
            biased_correlated_sample.schema,
            biased_correlated_sample,
            correlated_aggregates,
        )
        # Every phase-1 edge must survive into the final graph.
        for edge in report.phase1_edges:
            assert graph.has_edge(*edge)

    def test_max_parents_respected(self, correlated_population):
        climber = GreedyHillClimbing(max_parents=1)
        graph, _ = climber.learn(
            correlated_population.schema,
            correlated_population,
            aggregates=None,
            use_aggregate_phase=False,
        )
        assert graph.is_tree()

    def test_invalid_max_parents(self):
        with pytest.raises(BayesNetError):
            GreedyHillClimbing(max_parents=0)


class TestParameterLearning:
    def test_sample_only_mle(self, correlated_population):
        graph = DirectedAcyclicGraph(
            correlated_population.schema.names, [("A", "B"), ("B", "C")]
        )
        learner = ParameterLearner(use_aggregates=False, smoothing=0.0)
        network, report = learner.learn(
            graph, correlated_population.schema, correlated_population
        )
        counts = correlated_population.value_counts(["A"])
        total = correlated_population.n_rows
        marginal = ExactInference(network).marginal("A")
        assert marginal[0] == pytest.approx(counts[(0,)] / total, abs=1e-6)
        assert not report.constrained_nodes

    def test_constraints_fix_biased_marginal(
        self, correlated_population, biased_correlated_sample, correlated_aggregates
    ):
        graph = DirectedAcyclicGraph(
            correlated_population.schema.names, [("A", "B"), ("B", "C")]
        )
        n = correlated_population.n_rows
        constrained = ParameterLearner(use_aggregates=True)
        network, report = constrained.learn(
            graph,
            correlated_population.schema,
            biased_correlated_sample,
            aggregates=correlated_aggregates,
            population_size=n,
        )
        unconstrained_network, _ = ParameterLearner(use_aggregates=False).learn(
            graph, correlated_population.schema, biased_correlated_sample
        )
        truth = np.array(
            [correlated_population.count({"A": value}) / n for value in (0, 1, 2)]
        )
        constrained_error = np.abs(ExactInference(network).marginal("A") - truth).max()
        unconstrained_error = np.abs(
            ExactInference(unconstrained_network).marginal("A") - truth
        ).max()
        assert constrained_error < 0.02
        assert constrained_error < unconstrained_error
        assert "A" in report.constrained_nodes

    def test_full_family_aggregate_closed_form(
        self, correlated_population, biased_correlated_sample, correlated_aggregates
    ):
        """A (child, parent) aggregate pins the conditional in closed form."""
        graph = DirectedAcyclicGraph(
            correlated_population.schema.names, [("A", "B"), ("B", "C")]
        )
        learner = ParameterLearner(use_aggregates=True)
        network, report = learner.learn(
            graph,
            correlated_population.schema,
            biased_correlated_sample,
            aggregates=correlated_aggregates,
            population_size=correlated_population.n_rows,
        )
        assert "B" in report.closed_form_nodes
        # Pr(B | A) should match the population conditional closely.
        population_counts = correlated_population.value_counts(["A", "B"])
        a0_total = sum(v for (a, _), v in population_counts.items() if a == 0)
        true_conditional = population_counts[(0, 1)] / a0_total
        learned = network.cpt("B").probability(1, [0])
        assert learned == pytest.approx(true_conditional, abs=0.02)

    def test_rows_are_normalized(self, biased_correlated_sample, correlated_aggregates):
        graph = DirectedAcyclicGraph(
            biased_correlated_sample.schema.names, [("A", "B"), ("B", "C")]
        )
        network, _ = ParameterLearner(use_aggregates=True).learn(
            graph,
            biased_correlated_sample.schema,
            biased_correlated_sample,
            aggregates=correlated_aggregates,
            population_size=4000,
        )
        for node in network.nodes:
            assert network.cpt(node).is_normalized()

    def test_negative_smoothing_rejected(self):
        with pytest.raises(BayesNetError):
            ParameterLearner(smoothing=-1.0)


class TestLearningModes:
    def test_mode_letters_map_to_sources(self):
        assert LearningMode.BB.structure_source.value == "both"
        assert LearningMode.BB.parameter_source.value == "both"
        assert LearningMode.SS.structure_source.value == "sample"
        assert LearningMode.AB.structure_source.value == "aggregates"
        assert LearningMode.SB.parameter_source.value == "both"

    @pytest.mark.parametrize("mode", ["SS", "SB", "BS", "AB", "BB"])
    def test_all_modes_learn_a_network(
        self, mode, biased_correlated_sample, correlated_aggregates
    ):
        learner = ThemisBayesNetLearner.from_mode(mode)
        result = learner.learn(
            biased_correlated_sample, correlated_aggregates, population_size=4000
        )
        assert result.network.nodes == biased_correlated_sample.schema.names
        assert result.mode == LearningMode(mode)
        for node in result.network.nodes:
            assert result.network.cpt(node).is_normalized()

    def test_bb_beats_ss_on_biased_marginal(
        self, correlated_population, biased_correlated_sample, correlated_aggregates
    ):
        n = correlated_population.n_rows
        truth = np.array(
            [correlated_population.count({"A": value}) / n for value in (0, 1, 2)]
        )

        def marginal_error(mode):
            result = ThemisBayesNetLearner.from_mode(mode).learn(
                biased_correlated_sample, correlated_aggregates, population_size=n
            )
            return np.abs(ExactInference(result.network).marginal("A") - truth).max()

        assert marginal_error("BB") < marginal_error("SS")

    def test_empty_sample_rejected(self, correlated_population, correlated_aggregates):
        empty = Relation.empty(correlated_population.schema)
        with pytest.raises(BayesNetError):
            ThemisBayesNetLearner().learn(empty, correlated_aggregates)
