"""The fixed plan set behind the wire-format golden file.

Shared by the fixture generator (``python tests/golden_plans.py``) and the
compatibility tests in ``tests/test_plan_wire.py``: both build the exact
same plans from the shared test-world schema, so a golden mismatch can only
mean the *encoding* changed — which requires a ``WIRE_FORMAT_VERSION`` bump.

Every IR node type appears in at least one plan: Scan, Filter (equality,
ordered, IN, and out-of-domain predicates), Group, Aggregate (with extras),
Join, Having, Window (RANK and running SUM), Sort, Limit, and Route (both
unrouted and explicitly routed).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.plan import BN_LOWER_SAMPLED, ROUTE_HYBRID, PlanCompiler, plan_to_json
from repro.query.ast import (
    AggregateFunction,
    AggregateSpec,
    AnalyticQuery,
    Comparison,
    GroupByQuery,
    HavingPredicate,
    JoinGroupByQuery,
    OrderKey,
    PointQuery,
    Predicate,
    ScalarAggregateQuery,
    WindowFunction,
    WindowSpec,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "plan_wire_v1.json"


def golden_queries() -> dict[str, object]:
    """Name -> query AST, fixed forever (append new names, never edit)."""
    return {
        "point": PointQuery({"A": 1, "B": 2}),
        "point-out-of-domain": PointQuery({"A": 99, "C": 0}),
        "scalar-count-ordered": ScalarAggregateQuery(
            aggregate=AggregateSpec(AggregateFunction.COUNT),
            predicates=(
                Predicate("A", Comparison.LE, 1),
                Predicate("B", Comparison.GT, 0),
            ),
        ),
        "scalar-avg-in": ScalarAggregateQuery(
            aggregate=AggregateSpec(AggregateFunction.AVG, "B"),
            predicates=(Predicate("A", Comparison.IN, (0, 2)),),
        ),
        "group-by-sum": GroupByQuery(
            group_by=("A", "C"),
            aggregate=AggregateSpec(AggregateFunction.SUM, "B"),
            predicates=(Predicate("B", Comparison.NE, 1),),
        ),
        "join-group-by": JoinGroupByQuery(
            left_join="A",
            right_join="A",
            left_group="B",
            right_group="C",
            left_predicates=(Predicate("B", Comparison.EQ, 1),),
            right_predicates=(Predicate("C", Comparison.IN, (0, 1)),),
        ),
        "analytic-full-pipeline": AnalyticQuery(
            group_by=("A", "B"),
            aggregates=(
                AggregateSpec(AggregateFunction.COUNT, alias="n"),
                AggregateSpec(AggregateFunction.SUM, "C", alias="total"),
            ),
            predicates=(Predicate("C", Comparison.GE, 0),),
            having=(HavingPredicate("n", Comparison.GT, 1.0),),
            windows=(
                WindowSpec(
                    WindowFunction.RANK,
                    "r",
                    partition_by=("A",),
                    order_by=(OrderKey("count(*)", descending=True),),
                ),
                WindowSpec(
                    WindowFunction.SUM,
                    "running",
                    target="n",
                    order_by=(OrderKey("A"), OrderKey("B")),
                ),
            ),
            order_by=(OrderKey("r"), OrderKey("A", descending=True)),
            limit=5,
        ),
    }


def golden_plans(schema) -> dict[str, object]:
    """Name -> compiled plan over the shared test-world schema."""
    compiler = PlanCompiler(schema)
    plans = {
        name: compiler.compile(query) for name, query in golden_queries().items()
    }
    # One explicitly routed plan: the Route fields must survive the wire too.
    plans["point-routed-hybrid"] = plans["point"].with_route(
        ROUTE_HYBRID, BN_LOWER_SAMPLED
    )
    return plans


def build_fixture() -> dict[str, object]:
    """The golden-file payload: format version + canonical JSON per plan."""
    from worlds import build_fitted_themis
    from repro.plan import WIRE_FORMAT_VERSION

    themis = build_fitted_themis()
    plans = golden_plans(themis.sample.schema)
    return {
        "wire_format_version": WIRE_FORMAT_VERSION,
        "plans": {name: json.loads(plan_to_json(plan)) for name, plan in plans.items()},
    }


def main() -> None:
    """Regenerate the golden file (run after a deliberate version bump)."""
    fixture = build_fixture()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} (version {fixture['wire_format_version']})")


if __name__ == "__main__":
    main()
