"""Setuptools entry point (kept for offline editable installs)."""

from setuptools import setup

setup()
