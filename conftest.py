"""Repo-level pytest configuration: a per-test wall-clock watchdog.

``pytest-timeout`` is deliberately not a dependency — the watchdog below
covers the one failure mode we care about (a test hanging forever on a
stuck worker pipe, a deadlocked queue, or an unserved asyncio future, which
the fault-injection and governance suites could produce if a bug escaped)
with stdlib ``SIGALRM`` only:

* the budget is generous (default 600 s — tier-1 tests run in milliseconds
  to seconds, so only a genuine hang can hit it) and the alarm fires a
  plain ``Failed`` with the elapsed budget, so a hang turns into a readable
  failure instead of a killed CI job with no traceback;
* ``REPRO_TEST_TIMEOUT`` overrides the budget in seconds, ``0`` disables;
* the guard arms only on platforms where ``SIGALRM`` exists (not Windows)
  and only in the main thread (xdist workers and embedded runs skip it
  silently), and always restores the previous handler — ``pytest-benchmark``
  and subprocess-spawning tests run undisturbed beneath it.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

DEFAULT_TIMEOUT_SECONDS = 600.0


def _budget() -> float:
    raw = os.environ.get("REPRO_TEST_TIMEOUT")
    if raw is None:
        return DEFAULT_TIMEOUT_SECONDS
    try:
        return float(raw)
    except ValueError:
        return DEFAULT_TIMEOUT_SECONDS


def _can_arm() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@pytest.fixture(autouse=True)
def _test_watchdog(request):
    """Fail any test that outlives its wall-clock budget instead of hanging."""
    seconds = _budget()
    if seconds <= 0 or not _can_arm():
        yield
        return

    def _expired(signum, frame):
        pytest.fail(
            f"watchdog: {request.node.nodeid} exceeded {seconds:.0f}s "
            "(likely a hung worker pipe or an unserved future); set "
            "REPRO_TEST_TIMEOUT to adjust or 0 to disable",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    # setitimer supports float budgets and, unlike alarm(), cancels cleanly.
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
